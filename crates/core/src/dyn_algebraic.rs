//! Algorithm 1: MPI-parallel dynamic SpGEMM for algebraic updates.
//!
//! Given `A' = A + A*` and `B' = B + B*` (sums in the SpGEMM semiring), the
//! distributive law gives
//!
//! ```text
//! C' = C + C*,   C* := A*·B' + A·B*              (Eq. 1)
//! ```
//!
//! The algorithm computes `C*` **without broadcasting `A` or `B'`** — only
//! the hypersparse update blocks move:
//!
//! 1. process `(i,j)` sends `A*_{i,j}` and `B*_{i,j}` to its transposed peer
//!    `(j,i)` (one point-to-point round so the later broadcasts can run in
//!    parallel — Fig. 1a);
//! 2. `√p` rounds: in round `k`, `A*_{k,i}` is broadcast over process row
//!    `i` and `B*_{j,k}` over process column `j`; every rank multiplies
//!    locally (`Xⁱ_{k,j} = A*_{k,i}·B'_{i,j}` and `Yʲ_{i,k} = A_{i,j}·B*_{j,k}`,
//!    Fig. 1b);
//! 3. partial blocks are **aggregated non-locally**: `Xⁱ_{k,j}` reduces over
//!    column `j` onto process `(k,j)`, `Yʲ_{i,k}` over row `i` onto `(i,k)`
//!    (Fig. 1c) — a sparse merge-reduction, the price paid for not moving
//!    the big operands.
//!
//! Communication volume: `O(max(nnz(A*)+nnz(B*), nnz(C*))/√p)` versus
//! SUMMA's `O((nnz(A)+nnz(B'))/√p)` — the whole point of the paper.
//!
//! **Virtual transposition (Section V-C).** Step 1's point-to-point
//! exchange exists only to park each update block at its transposed grid
//! position before the broadcasts. The communication-avoiding variant
//! ([`TransposeMode::Virtual`], the default) removes that wire round
//! entirely: the update batch is redistributed *twice* — once in natural
//! layout (the local `A += A*` application needs it) and once with flipped
//! tuples and swapped dimensions ([`crate::update::build_update_matrix_pair`]),
//! so every rank's transposed-layout block already **is** its
//! transposed-position block, just transposed. A purely local counting-sort
//! transposition recovers the broadcast payload bit-for-bit
//! ([`StarView::Transposed`]), the `send/recv` phase carries zero
//! point-to-point bytes, and `C` is bit-identical by construction — the
//! `repro commavoid` ablation asserts both.
//!
//! The module is generic over an [`XYKernel`] so the identical communication
//! structure also serves the Bloom-fused variant (engine sessions that
//! maintain the filter matrix `F`) and `COMPUTE_PATTERN` of Algorithm 2.

use crate::distmat::{DistDcsr, DistMat, Elem};
use crate::exec::Exec;
use crate::grid::Grid;
use crate::layout::uniform_layout;
use crate::phase;
use crate::pipeline::{await_into_phase, run_rounds, Schedule};
use crate::update::{
    apply_add_exec, build_update_matrix_in, build_update_matrix_pair_in, start_update_matrix_in,
    start_update_matrix_pair_in, Dedup, StarPair,
};
use dspgemm_mpi::Request;
use dspgemm_sparse::local_mm::{
    spgemm_bloom_with, spgemm_pattern_with, spgemm_with, KernelPlan, MmOutput,
};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Dcsr, DhbMatrix, Index, RowScan, Triple};
use dspgemm_util::stats::PhaseTimer;
use std::sync::Arc;

/// The local multiply/merge flavor plugged into the round structure. Each
/// kernel selects its payload-matching workspace pool from the session's
/// [`Exec`] via [`XYKernel::plan`], so every flavor runs scheduled and
/// pooled.
pub trait XYKernel<S: Semiring>: 'static {
    /// Partial-block element type.
    type Out: Elem;

    /// The [`KernelPlan`] (schedule + pooled workspaces) this flavor runs
    /// under, drawn from the session's [`Exec`].
    fn plan(exec: &Exec<S>) -> KernelPlan<'_, Self::Out>;

    /// `X = A*_{k,i} · B'_{i,j}` (hypersparse left, dynamic right).
    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, Self::Out>,
    ) -> MmOutput<Self::Out>;

    /// `Y = A_{i,j} · B*_{j,k}` (dynamic left, hypersparse right via the
    /// O(1) row-reader adapter).
    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, Self::Out>,
    ) -> MmOutput<Self::Out>;

    /// Combines coinciding entries during aggregation.
    fn merge(a: Self::Out, b: Self::Out) -> Self::Out;
}

/// Values only — the production algebraic path.
#[derive(Debug)]
pub struct PlainKernel;

impl<S: Semiring> XYKernel<S> for PlainKernel {
    type Out = S::Elem;

    fn plan(exec: &Exec<S>) -> KernelPlan<'_, S::Elem> {
        exec.plain()
    }

    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        _k_offset: Index,
        plan: KernelPlan<'_, S::Elem>,
    ) -> MmOutput<S::Elem> {
        spgemm_with::<S, _, _>(a_star, b_new, plan)
    }

    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        _k_offset: Index,
        plan: KernelPlan<'_, S::Elem>,
    ) -> MmOutput<S::Elem> {
        spgemm_with::<S, _, _>(a_old, &b_star.row_reader(), plan)
    }

    fn merge(a: S::Elem, b: S::Elem) -> S::Elem {
        S::add(a, b)
    }
}

/// Values fused with Bloom bitfields — for engine sessions maintaining `F`.
#[derive(Debug)]
pub struct BloomKernel;

impl<S: Semiring> XYKernel<S> for BloomKernel {
    type Out = (S::Elem, u64);

    fn plan(exec: &Exec<S>) -> KernelPlan<'_, (S::Elem, u64)> {
        exec.fused()
    }

    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, (S::Elem, u64)>,
    ) -> MmOutput<(S::Elem, u64)> {
        spgemm_bloom_with::<S, _, _>(a_star, b_new, k_offset, plan)
    }

    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, (S::Elem, u64)>,
    ) -> MmOutput<(S::Elem, u64)> {
        spgemm_bloom_with::<S, _, _>(a_old, &b_star.row_reader(), k_offset, plan)
    }

    fn merge(a: (S::Elem, u64), b: (S::Elem, u64)) -> (S::Elem, u64) {
        (S::add(a.0, b.0), a.1 | b.1)
    }
}

/// Structure + Bloom bits only, no values — `COMPUTE_PATTERN` of Algorithm 2.
#[derive(Debug)]
pub struct PatternKernel;

impl<S: Semiring> XYKernel<S> for PatternKernel {
    type Out = u64;

    fn plan(exec: &Exec<S>) -> KernelPlan<'_, u64> {
        exec.pattern()
    }

    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, u64>,
    ) -> MmOutput<u64> {
        spgemm_pattern_with(a_star, b_new, k_offset, plan)
    }

    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, u64>,
    ) -> MmOutput<u64> {
        spgemm_pattern_with(a_old, &b_star.row_reader(), k_offset, plan)
    }

    fn merge(a: u64, b: u64) -> u64 {
        a | b
    }
}

/// How Algorithm 1's round roots obtain the transposed-position update
/// blocks they broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransposeMode {
    /// Physical point-to-point exchange with the transposed peer rank
    /// (Fig. 1a; the pre-Section-V-C schedule) — kept as the
    /// `repro commavoid` ablation baseline.
    Physical,
    /// Virtual transposition (Section V-C, the default): the update batch
    /// is additionally built in transposed layout, so every round root
    /// recovers its broadcast payload by a purely local transposition of
    /// its own block. The transpose-exchange phase moves zero bytes.
    #[default]
    Virtual,
}

/// One update-matrix operand of the `C*` round structure, tagged with its
/// layout — the `Transposed` operand view of the communication-avoiding
/// schedulers.
#[derive(Debug, Clone, Copy)]
pub enum StarView<'a, V: Elem> {
    /// `A*` in natural layout (`A*_{i,j}` at rank `(i, j)`): the round
    /// roots' blocks are obtained with the point-to-point transpose
    /// exchange.
    Natural(&'a DistDcsr<V>),
    /// `(A*)ᵀ` as built by [`crate::update::build_update_matrix_pair`]
    /// (`(A*_{j,i})ᵀ` at rank `(i, j)`): the round roots' blocks are
    /// recovered by a local counting-sort transposition — zero wire bytes.
    Transposed(&'a DistDcsr<V>),
}

impl<'a, V: Elem> StarView<'a, V> {
    /// The underlying distributed matrix, whatever its layout.
    fn dist(&self) -> &'a DistDcsr<V> {
        match self {
            StarView::Natural(d) | StarView::Transposed(d) => d,
        }
    }

    /// Local non-zero count (the global sum is layout-independent, so the
    /// collective empty-batch elision agrees across modes).
    pub fn local_nnz(&self) -> usize {
        self.dist().local_nnz()
    }
}

/// The update-matrix build(s) one operand of a batch needs under a given
/// [`TransposeMode`] — what [`apply_algebraic_updates_prebuilt_exec`]
/// consumes and the engine's lookahead queue completes in the background.
pub enum StarBuild<V: Elem> {
    /// Natural layout only; rounds resolve via the physical exchange.
    Physical(DistDcsr<V>),
    /// Natural + transposed layouts; rounds resolve locally (Section V-C).
    Virtual(StarPair<V>),
}

impl<V: Elem> StarBuild<V> {
    /// The natural-layout matrix (what `A += A*` applies).
    pub fn natural(&self) -> &DistDcsr<V> {
        match self {
            StarBuild::Physical(d) => d,
            StarBuild::Virtual(p) => &p.natural,
        }
    }

    /// The operand view the round structure consumes.
    pub fn view(&self) -> StarView<'_, V> {
        match self {
            StarBuild::Physical(d) => StarView::Natural(d),
            StarBuild::Virtual(p) => StarView::Transposed(&p.transposed),
        }
    }
}

/// Builds one operand's update matrix (or matrix pair) from
/// globally-indexed tuples under the given mode, routed by the uniform
/// layout. Collective over the grid.
pub fn build_star<S: Semiring>(
    grid: &Grid,
    nrows: dspgemm_sparse::Index,
    ncols: dspgemm_sparse::Index,
    tuples: Vec<Triple<S::Elem>>,
    mode: TransposeMode,
    timer: &mut PhaseTimer,
) -> StarBuild<S::Elem> {
    build_star_in::<S>(
        grid,
        &uniform_layout(nrows, ncols, grid.q()),
        tuples,
        mode,
        timer,
    )
}

/// [`build_star`] under an explicit [`crate::layout::Layout`] — update
/// operands must route
/// under the same (possibly rebalanced) cuts as the matrix they patch.
/// Collective over the grid.
pub fn build_star_in<S: Semiring>(
    grid: &Grid,
    layout: &Arc<crate::layout::Layout>,
    tuples: Vec<Triple<S::Elem>>,
    mode: TransposeMode,
    timer: &mut PhaseTimer,
) -> StarBuild<S::Elem> {
    match mode {
        TransposeMode::Physical => StarBuild::Physical(build_update_matrix_in::<S>(
            grid,
            layout,
            tuples,
            Dedup::Add,
            timer,
        )),
        TransposeMode::Virtual => StarBuild::Virtual(build_update_matrix_pair_in::<S>(
            grid,
            layout,
            tuples,
            Dedup::Add,
            timer,
        )),
    }
}

/// Resolves up to two [`StarView`] operands into the blocks Algorithm 1's
/// round roots broadcast (`A*_{j,i}` at rank `(i, j)`). One helper serves
/// the two-operand and the shared-operand paths:
///
/// * [`StarView::Natural`] items run the physical transpose exchange, both
///   directions of every item posted nonblocking (irecvs first, then the
///   buffered sends) under [`phase::SEND_RECV`], so concurrent items cross
///   the wire together instead of serializing;
/// * [`StarView::Transposed`] items never touch the wire: the rank's own
///   block already *is* the transposed-position block in transposed form,
///   and a pooled local counting-sort transposition
///   ([`Dcsr::transpose_into`] through the session's [`Exec`]) recovers the
///   payload bit-for-bit under [`phase::TRANSPOSE_LOCAL`] (Section V-C).
///
/// `None` items (globally empty update sides) stay `None`.
fn resolve_star_blocks<S: Semiring>(
    grid: &Grid,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
    items: [Option<(StarView<'_, S::Elem>, u64)>; 2],
) -> [Option<Arc<Dcsr<S::Elem>>>; 2] {
    let mut out: [Option<Arc<Dcsr<S::Elem>>>; 2] = [None, None];
    // Transposed views first: purely local, no peer coordination needed.
    for (slot, item) in out.iter_mut().zip(&items) {
        if let Some((StarView::Transposed(t), _)) = item {
            let _sp =
                dspgemm_obs::span("engine", "transpose_virtual").attr("nnz", t.local_nnz() as u64);
            *slot = Some(timer.time(phase::TRANSPOSE_LOCAL, || {
                let mut ws = exec.transpose_ws();
                Arc::new(t.block().transpose_into(&mut ws))
            }));
        }
    }
    // Natural views: the transpose exchange of Fig. 1a.
    let peer = grid.transpose_rank();
    if peer == grid.world().rank() {
        for (slot, item) in out.iter_mut().zip(&items) {
            if let Some((StarView::Natural(d), _)) = item {
                *slot = Some(d.block_shared());
            }
        }
        return out;
    }
    if !items
        .iter()
        .any(|i| matches!(i, Some((StarView::Natural(_), _))))
    {
        return out;
    }
    timer.time(phase::SEND_RECV, || {
        type BlockRecv<V> = Option<Request<Arc<Dcsr<V>>>>;
        let mut recvs: [BlockRecv<S::Elem>; 2] = [None, None];
        for (r, item) in recvs.iter_mut().zip(&items) {
            if let Some((StarView::Natural(_), tag)) = item {
                *r = Some(grid.world().irecv_shared::<Dcsr<S::Elem>>(peer, *tag));
            }
        }
        for item in &items {
            if let Some((StarView::Natural(d), tag)) = item {
                grid.world()
                    .isend_shared(peer, *tag, d.block_shared())
                    .wait();
            }
        }
        for (slot, r) in out.iter_mut().zip(recvs) {
            if let Some(req) = r {
                *slot = Some(req.wait());
            }
        }
    });
    out
}

/// Runs the transpose exchange (or its local virtual replacement), `√p`
/// broadcast rounds, local multiplications and sparse merge-reductions of
/// Algorithm 1, returning this rank's block of `C* = A*·B' + A·B*` plus the
/// local flop count. Collective over the grid.
///
/// Inputs obey Eq. 1's timing: `a_old` is `A` *before* its updates, `b_new`
/// is `B'` *after* its updates. The update operands arrive as [`StarView`]s,
/// so callers choose per operand whether round roots resolve their blocks
/// physically (wire exchange) or virtually (local transposition).
pub fn compute_cstar<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a_old: &DistMat<S::Elem>,
    b_new: &DistMat<S::Elem>,
    a_star: StarView<'_, S::Elem>,
    b_star: StarView<'_, S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    compute_cstar_exec::<S, K>(
        grid,
        a_old,
        b_new,
        a_star,
        b_star,
        &Exec::new(threads),
        timer,
    )
}

/// [`compute_cstar`] under an explicit [`Exec`] (persistent workspace pools
/// + row schedule).
pub fn compute_cstar_exec<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a_old: &DistMat<S::Elem>,
    b_new: &DistMat<S::Elem>,
    a_star: StarView<'_, S::Elem>,
    b_star: StarView<'_, S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    let q = grid.q();
    let (i, j) = grid.coords();
    let my_block_rows = a_old.info().local_rows();
    let my_block_cols = b_new.info().local_cols();

    // Empty-side elision: a globally empty update matrix contributes nothing
    // to Eq. 1, so its whole pass (transpose resolution, broadcasts,
    // multiplies, reductions) is skipped. The decision is collective-safe
    // because it is made from the allreduced global nnz, agreed on all ranks
    // (and layout-independent: natural and transposed builds hold the same
    // global entry set). This is the common case in the paper's Fig. 9
    // protocol, where `B` is static.
    let (a_star_nnz, b_star_nnz) = {
        let both = grid.world().allreduce(
            [a_star.local_nnz() as u64, b_star.local_nnz() as u64],
            |x, y| [x[0] + y[0], x[1] + y[1]],
        );
        (both[0], both[1])
    };

    // Step 1: round roots obtain their transposed-position blocks — a wire
    // exchange for natural views, a local transposition for transposed ones.
    const TAG_AT: u64 = 101;
    const TAG_BT: u64 = 102;
    let [at_blk, bt_blk] = resolve_star_blocks::<S>(
        grid,
        exec,
        timer,
        [
            (a_star_nnz != 0).then_some((a_star, TAG_AT)),
            (b_star_nnz != 0).then_some((b_star, TAG_BT)),
        ],
    );

    // Step 2 + 3: √p rounds of broadcasts, local multiplies, aggregation —
    // pipelined: round k+1's update-block broadcasts are in flight while
    // round k multiplies and merge-reduces (the progress engine forwards
    // their tree edges even while ranks are blocked inside the reductions).
    let mut flops = 0u64;
    let mut x_mine: Option<Dcsr<K::Out>> = None;
    let mut y_mine: Option<Dcsr<K::Out>> = None;
    type UpdFlight<V> = (Option<Request<Arc<Dcsr<V>>>>, Option<Request<Arc<Dcsr<V>>>>);
    run_rounds(
        &mut (timer, &mut flops, &mut x_mine, &mut y_mine),
        q,
        Schedule::Overlap,
        |_ctx, k| -> UpdFlight<S::Elem> {
            // A*_{k,i} over process row i (its holder after the transpose
            // exchange is (i,k), i.e. row-comm member k); B*_{j,k} over
            // process column j (holder (k,j) = col-comm member k).
            let ra = at_blk.as_ref().map(|at| {
                grid.row_comm()
                    .ibcast_shared(k, if j == k { Some(Arc::clone(at)) } else { None })
            });
            let rb = bt_blk.as_ref().map(|bt| {
                grid.col_comm()
                    .ibcast_shared(k, if i == k { Some(Arc::clone(bt)) } else { None })
            });
            (ra, rb)
        },
        |ctx, _k, (ra, rb)| {
            let a_bcast = ra.map(|r| await_into_phase(r, ctx.0, phase::BCAST));
            let b_bcast = rb.map(|r| await_into_phase(r, ctx.0, phase::BCAST));
            (a_bcast, b_bcast)
        },
        |ctx, k, (a_bcast, b_bcast)| {
            let (timer, flops, x_mine, y_mine) = ctx;
            // X pass: multiply into B', reduce onto (k,j) via column j.
            if let Some(a_bcast) = a_bcast {
                let x_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_x(
                        &a_bcast,
                        b_new.block(),
                        b_new.info().row_range.start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&x_part.thread_flops);
                **flops += x_part.flops;
                let x_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.col_comm()
                        .reduce(k, x_part.result, |a, b| Dcsr::merge_with(&a, &b, K::merge))
                });
                if let Some(x) = x_red {
                    debug_assert_eq!(i, k);
                    **x_mine = Some(x);
                }
            }
            // Y pass: multiply from A, reduce onto (i,k) via row i.
            if let Some(b_bcast) = b_bcast {
                let y_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_y(
                        a_old.block(),
                        &b_bcast,
                        a_old.info().col_range.start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&y_part.thread_flops);
                **flops += y_part.flops;
                let y_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.row_comm()
                        .reduce(k, y_part.result, |a, b| Dcsr::merge_with(&a, &b, K::merge))
                });
                if let Some(y) = y_red {
                    debug_assert_eq!(j, k);
                    **y_mine = Some(y);
                }
            }
        },
    );
    let cstar = match (x_mine, y_mine) {
        (Some(x), Some(y)) => Dcsr::merge_with(&x, &y, K::merge),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => Dcsr::empty(my_block_rows, my_block_cols),
    };
    (cstar, flops)
}

/// Shared-operand variant of [`compute_cstar`]: this rank's block of
/// `C* = A*·A' + A·A*` for a maintained *square* product `C = A · A`, where
/// both Eq.-1 terms draw on the **same** stored matrix. Collective.
///
/// The interleaved round structure of [`compute_cstar`] needs the old `A`
/// (for the `Y` pass) and the new `A'` (for the `X` pass) simultaneously,
/// which a single stored operand cannot provide. Instead of cloning the
/// whole matrix, the two passes are sequenced around the update itself:
///
/// 1. `√p` `Y` rounds with the *old* `A`: `Yʲ_{i,k} = A_{i,j}·A*_{j,k}`,
///    reduced over row `i` onto `(i,k)`;
/// 2. `apply` turns `A` into `A'` in place (purely local);
/// 3. `√p` `X` rounds with the *new* `A'`: `Xⁱ_{k,j} = A*_{k,i}·A'_{i,j}`,
///    reduced over column `j` onto `(k,j)`.
///
/// One transpose exchange of the single update block replaces Algorithm 1's
/// two, and the communication volume is halved relative to maintaining a
/// lock-stepped clone of `A` as the second operand (each update batch is
/// redistributed, exchanged and broadcast once instead of twice).
pub fn compute_cstar_shared<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    star: StarView<'_, S::Elem>,
    apply: impl FnOnce(&mut DistMat<S::Elem>),
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    compute_cstar_shared_exec::<S, K>(grid, a, star, apply, &Exec::new(threads), timer)
}

/// [`compute_cstar_shared`] under an explicit [`Exec`].
pub fn compute_cstar_shared_exec<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    star: StarView<'_, S::Elem>,
    apply: impl FnOnce(&mut DistMat<S::Elem>),
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    assert_eq!(
        a.info().nrows,
        a.info().ncols,
        "shared-operand dynamic SpGEMM maintains a square product C = A·A"
    );
    let q = grid.q();
    let (i, j) = grid.coords();
    let my_block_rows = a.info().local_rows();
    let my_block_cols = a.info().local_cols();

    // Empty-batch elision, agreed collectively (cf. `compute_cstar`).
    let star_nnz = grid
        .world()
        .allreduce(star.local_nnz() as u64, |x, y| x + y);
    if star_nnz == 0 {
        timer.time(phase::LOCAL_UPDATE, || apply(a));
        return (Dcsr::empty(my_block_rows, my_block_cols), 0);
    }

    // One transposed-block resolution serves both passes: rank (i,j)
    // obtains A*_{j,i} — by wire exchange (natural view) or by local
    // transposition of its own transposed-layout block (virtual view) — so
    // in round k the row-comm member k of row i holds A*_{k,i} and the
    // col-comm member k of column j holds A*_{k,j}, exactly as in
    // Algorithm 1.
    const TAG_SHARED: u64 = 104;
    let [star_t, _] = resolve_star_blocks::<S>(grid, exec, timer, [Some((star, TAG_SHARED)), None]);
    let star_t: Arc<Dcsr<S::Elem>> = star_t.expect("nonempty operand resolves to a block");

    let mut flops = 0u64;

    // Y pass against the old A — pipelined (round k+1's broadcast of the
    // transposed update block is in flight while round k multiplies and
    // reduces).
    let mut y_mine: Option<Dcsr<K::Out>> = None;
    {
        let a_ref = &*a;
        run_rounds(
            &mut (&mut *timer, &mut flops, &mut y_mine),
            q,
            Schedule::Overlap,
            |_ctx, k| {
                grid.col_comm().ibcast_shared(
                    k,
                    if i == k {
                        Some(Arc::clone(&star_t))
                    } else {
                        None
                    },
                )
            },
            |ctx, _k, req| await_into_phase(req, ctx.0, phase::BCAST),
            |ctx, k, b_bcast| {
                let (timer, flops, y_mine) = ctx;
                let y_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_y(
                        a_ref.block(),
                        &b_bcast,
                        a_ref.info().col_range.start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&y_part.thread_flops);
                **flops += y_part.flops;
                let y_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.row_comm()
                        .reduce(k, y_part.result, |x, y| Dcsr::merge_with(&x, &y, K::merge))
                });
                if let Some(y) = y_red {
                    debug_assert_eq!(j, k);
                    **y_mine = Some(y);
                }
            },
        );
    }

    // A → A' (purely local).
    timer.time(phase::LOCAL_UPDATE, || apply(a));

    // X pass against the new A' — pipelined likewise.
    let mut x_mine: Option<Dcsr<K::Out>> = None;
    {
        let a_ref = &*a;
        run_rounds(
            &mut (&mut *timer, &mut flops, &mut x_mine),
            q,
            Schedule::Overlap,
            |_ctx, k| {
                grid.row_comm().ibcast_shared(
                    k,
                    if j == k {
                        Some(Arc::clone(&star_t))
                    } else {
                        None
                    },
                )
            },
            |ctx, _k, req| await_into_phase(req, ctx.0, phase::BCAST),
            |ctx, k, a_bcast| {
                let (timer, flops, x_mine) = ctx;
                let x_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_x(
                        &a_bcast,
                        a_ref.block(),
                        a_ref.info().row_range.start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&x_part.thread_flops);
                **flops += x_part.flops;
                let x_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.col_comm()
                        .reduce(k, x_part.result, |x, y| Dcsr::merge_with(&x, &y, K::merge))
                });
                if let Some(x) = x_red {
                    debug_assert_eq!(i, k);
                    **x_mine = Some(x);
                }
            },
        );
    }

    let cstar = match (x_mine, y_mine) {
        (Some(x), Some(y)) => Dcsr::merge_with(&x, &y, K::merge),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => Dcsr::empty(my_block_rows, my_block_cols),
    };
    (cstar, flops)
}

/// Shared-operand algebraic update from a **pre-built** update matrix:
/// maintains `C = A · A` through `A' = A + A*` and returns this rank's
/// `C*` block (the local delta merged into `C`) plus the flop count — the
/// delta lets callers (the analytics session's views) observe exactly which
/// product entries changed without a second pass. Collective.
///
/// The caller performs the redistribution once
/// ([`crate::update::build_update_matrix`] with [`Dedup::Add`]) and may feed
/// the same `A*` to any number of consumers; this is the "one redistribution
/// pays for all views" contract.
pub fn apply_shared_algebraic_prebuilt<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    star: &DistDcsr<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<S::Elem>, u64) {
    apply_shared_algebraic_prebuilt_exec::<S>(grid, a, c, star, &Exec::new(threads), timer)
}

/// [`apply_shared_algebraic_prebuilt`] under an explicit [`Exec`] — the
/// analytics session's entry point, so view refreshes reuse the session's
/// pooled workspaces.
pub fn apply_shared_algebraic_prebuilt_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    star: &DistDcsr<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<S::Elem>, u64) {
    apply_shared_algebraic_view_exec::<S>(grid, a, c, StarView::Natural(star), star, exec, timer)
}

/// [`apply_shared_algebraic_prebuilt_exec`] from a prebuilt [`StarPair`]:
/// the round roots resolve their blocks by local transposition instead of
/// the wire exchange (Section V-C), and the natural half feeds `A += A*`.
pub fn apply_shared_algebraic_prebuilt_pair_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    pair: &StarPair<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<S::Elem>, u64) {
    apply_shared_algebraic_view_exec::<S>(
        grid,
        a,
        c,
        StarView::Transposed(&pair.transposed),
        &pair.natural,
        exec,
        timer,
    )
}

/// Common body of the shared plain variants: `view` drives the round
/// structure, `natural` drives the in-place `A += A*`.
fn apply_shared_algebraic_view_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    view: StarView<'_, S::Elem>,
    natural: &DistDcsr<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<S::Elem>, u64) {
    let (cstar, flops) = compute_cstar_shared_exec::<S, PlainKernel>(
        grid,
        a,
        view,
        |m| apply_add_exec::<S>(m, natural, exec),
        exec,
        timer,
    );
    timer.time(phase::LOCAL_UPDATE, || {
        if cstar.nnz() == 0 {
            return; // keep the block's snapshot image valid (COW publish)
        }
        let block = c.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &v) in cols.iter().zip(vals) {
                block.add_entry::<S>(r, cc, v);
            }
        });
    });
    (cstar, flops)
}

/// Like [`apply_shared_algebraic_prebuilt`], additionally maintaining the
/// Bloom filter matrix `F` (required when general updates may follow). The
/// returned `C*` block carries `(value, bitfield)` pairs. Collective.
pub fn apply_shared_algebraic_prebuilt_tracked<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    star: &DistDcsr<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    apply_shared_algebraic_prebuilt_tracked_exec::<S>(
        grid,
        a,
        c,
        f,
        star,
        &Exec::new(threads),
        timer,
    )
}

/// [`apply_shared_algebraic_prebuilt_tracked`] under an explicit [`Exec`].
pub fn apply_shared_algebraic_prebuilt_tracked_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    star: &DistDcsr<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    apply_shared_algebraic_tracked_view_exec::<S>(
        grid,
        a,
        c,
        f,
        StarView::Natural(star),
        star,
        exec,
        timer,
    )
}

/// [`apply_shared_algebraic_prebuilt_tracked_exec`] from a prebuilt
/// [`StarPair`] (virtual transposition, Section V-C).
#[allow(clippy::too_many_arguments)]
pub fn apply_shared_algebraic_prebuilt_tracked_pair_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    pair: &StarPair<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    apply_shared_algebraic_tracked_view_exec::<S>(
        grid,
        a,
        c,
        f,
        StarView::Transposed(&pair.transposed),
        &pair.natural,
        exec,
        timer,
    )
}

/// Common body of the shared tracked variants (cf.
/// `apply_shared_algebraic_view_exec`).
#[allow(clippy::too_many_arguments)]
fn apply_shared_algebraic_tracked_view_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    view: StarView<'_, S::Elem>,
    natural: &DistDcsr<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    let (cstar, flops) = compute_cstar_shared_exec::<S, BloomKernel>(
        grid,
        a,
        view,
        |m| apply_add_exec::<S>(m, natural, exec),
        exec,
        timer,
    );
    timer.time(phase::LOCAL_UPDATE, || {
        if cstar.nnz() == 0 {
            return; // keep the blocks' snapshot images valid (COW publish)
        }
        let c_block = c.block_mut();
        let f_block = f.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &(v, bits)) in cols.iter().zip(vals) {
                c_block.add_entry::<S>(r, cc, v);
                f_block.combine_entry(r, cc, bits, |x, y| x | y);
            }
        });
    });
    (cstar, flops)
}

/// Full algebraic-update step on an `(A, B, C)` triple: builds the update
/// matrices from globally-indexed tuples, applies them, and patches `C` via
/// Algorithm 1. Returns the local flop count. Collective over the grid.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_algebraic_updates_exec::<S>(
        grid,
        a,
        b,
        c,
        a_tuples,
        b_tuples,
        &Exec::new(threads),
        timer,
    )
}

/// [`apply_algebraic_updates`] under an explicit [`Exec`] — the engine's
/// entry point, so consecutive update batches reuse the session pools.
/// Defaults to [`TransposeMode::Virtual`] (Section V-C); `C` is
/// bit-identical across modes.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_algebraic_updates_mode_exec::<S>(
        grid,
        a,
        b,
        c,
        a_tuples,
        b_tuples,
        TransposeMode::default(),
        exec,
        timer,
    )
}

/// [`apply_algebraic_updates_exec`] under an explicit [`TransposeMode`] —
/// the `repro commavoid` ablation switch.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_mode_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    mode: TransposeMode,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    let (a_star, b_star) = build_star_operands::<S>(grid, a, b, a_tuples, b_tuples, mode, timer);
    apply_algebraic_updates_prebuilt_exec::<S>(grid, a, b, c, &a_star, &b_star, exec, timer)
}

/// Builds both operands' update matrices under [`phase::SCATTER`], issuing
/// both row-phase `IALLTOALLV`s before completing either so the
/// redistributions cross the wire concurrently. Collective.
fn build_star_operands<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    mode: TransposeMode,
    timer: &mut PhaseTimer,
) -> (StarBuild<S::Elem>, StarBuild<S::Elem>) {
    let a_layout = Arc::clone(a.info().layout());
    let b_layout = Arc::clone(b.info().layout());
    timer.time(phase::SCATTER, || {
        let mut inner = PhaseTimer::new();
        match mode {
            TransposeMode::Physical => {
                let pa =
                    start_update_matrix_in::<S>(grid, &a_layout, a_tuples, Dedup::Add, &mut inner);
                let pb =
                    start_update_matrix_in::<S>(grid, &b_layout, b_tuples, Dedup::Add, &mut inner);
                (
                    StarBuild::Physical(pa.finish(grid, &mut inner)),
                    StarBuild::Physical(pb.finish(grid, &mut inner)),
                )
            }
            TransposeMode::Virtual => {
                let pa = start_update_matrix_pair_in::<S>(
                    grid,
                    &a_layout,
                    a_tuples,
                    Dedup::Add,
                    &mut inner,
                );
                let pb = start_update_matrix_pair_in::<S>(
                    grid,
                    &b_layout,
                    b_tuples,
                    Dedup::Add,
                    &mut inner,
                );
                (
                    StarBuild::Virtual(pa.finish(grid, &mut inner)),
                    StarBuild::Virtual(pb.finish(grid, &mut inner)),
                )
            }
        }
    })
}

/// Algebraic-update step from **pre-built** update operands: applies
/// `B += B*`, runs Algorithm 1's rounds, applies `A += A*` and patches `C`.
/// The engine's inter-batch lookahead completes builds in the background
/// and drains them through this entry point. Collective.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_prebuilt_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    a_star: &StarBuild<S::Elem>,
    b_star: &StarBuild<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    // Eq. 1 ordering: B must be B' during the multiplication, A must still
    // be the old A.
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(b, b_star.natural(), exec);
    });
    let (cstar, flops) =
        compute_cstar_exec::<S, PlainKernel>(grid, a, b, a_star.view(), b_star.view(), exec, timer);
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(a, a_star.natural(), exec);
        if cstar.nnz() == 0 {
            return; // keep the block's snapshot image valid (COW publish)
        }
        let block = c.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &v) in cols.iter().zip(vals) {
                block.add_entry::<S>(r, cc, v);
            }
        });
    });
    flops
}

/// Algebraic-update step that also maintains the Bloom filter matrix `F`
/// (required when general updates may follow). Identical communication
/// structure; partial blocks carry `(value, bitfield)` pairs.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_tracked<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_algebraic_updates_tracked_exec::<S>(
        grid,
        a,
        b,
        c,
        f,
        a_tuples,
        b_tuples,
        &Exec::new(threads),
        timer,
    )
}

/// [`apply_algebraic_updates_tracked`] under an explicit [`Exec`]. Defaults
/// to [`TransposeMode::Virtual`] (Section V-C).
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_tracked_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_algebraic_updates_tracked_mode_exec::<S>(
        grid,
        a,
        b,
        c,
        f,
        a_tuples,
        b_tuples,
        TransposeMode::default(),
        exec,
        timer,
    )
}

/// [`apply_algebraic_updates_tracked_exec`] under an explicit
/// [`TransposeMode`].
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_tracked_mode_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    mode: TransposeMode,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    let (a_star, b_star) = build_star_operands::<S>(grid, a, b, a_tuples, b_tuples, mode, timer);
    apply_algebraic_updates_tracked_prebuilt_exec::<S>(
        grid, a, b, c, f, &a_star, &b_star, exec, timer,
    )
}

/// Tracked analog of [`apply_algebraic_updates_prebuilt_exec`]: also
/// maintains the Bloom filter matrix `F`. Collective.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_tracked_prebuilt_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_star: &StarBuild<S::Elem>,
    b_star: &StarBuild<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(b, b_star.natural(), exec);
    });
    let (cstar, flops) =
        compute_cstar_exec::<S, BloomKernel>(grid, a, b, a_star.view(), b_star.view(), exec, timer);
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(a, a_star.natural(), exec);
        if cstar.nnz() == 0 {
            return; // keep the blocks' snapshot images valid (COW publish)
        }
        let c_block = c.block_mut();
        let f_block = f.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &(v, bits)) in cols.iter().zip(vals) {
                c_block.add_entry::<S>(r, cc, v);
                f_block.combine_entry(r, cc, bits, |x, y| x | y);
            }
        });
    });
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::summa;
    use crate::update::apply_add;
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    /// End-to-end: dynamic result after several batches must equal a static
    /// recomputation of A'·B' from scratch.
    fn check_dynamic_equals_static(p: usize, n: Index, batches: usize) {
        let out = run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64, count: usize| {
                if comm.rank() == 0 {
                    random_triples(s, n, count)
                } else {
                    vec![]
                }
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed(1, 80), 2, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed(2, 80), 2, &mut timer);
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 2, &mut timer);
            for round in 0..batches as u64 {
                // Every rank contributes its own update tuples.
                let a_ups = random_triples(100 + round * 7 + comm.rank() as u64, n, 15);
                let b_ups = random_triples(500 + round * 7 + comm.rank() as u64, n, 15);
                apply_algebraic_updates::<U64Plus>(
                    &grid, &mut a, &mut b, &mut c, a_ups, b_ups, 2, &mut timer,
                );
            }
            // Static recomputation from the final A', B'.
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &b, 2, &mut timer);
            (
                c.gather_to_root(comm),
                c_static.gather_to_root(comm),
                a.gather_to_root(comm),
                b.gather_to_root(comm),
            )
        });
        let (c_dyn, c_static, a_fin, b_fin) = &out.results[0];
        let c_dyn = c_dyn.as_ref().unwrap();
        let c_static = c_static.as_ref().unwrap();
        let n_us = n;
        let dd = Dense::from_triples::<U64Plus>(n_us, n_us, c_dyn);
        let ds = Dense::from_triples::<U64Plus>(n_us, n_us, c_static);
        assert_eq!(dd.diff(&ds), vec![], "p={p}: dynamic != static");
        // Also check against a fully independent dense reference.
        let da = Dense::from_triples::<U64Plus>(n_us, n_us, a_fin.as_ref().unwrap());
        let db = Dense::from_triples::<U64Plus>(n_us, n_us, b_fin.as_ref().unwrap());
        let dref = da.matmul::<U64Plus>(&db);
        assert_eq!(dd.diff(&dref), vec![], "p={p}: dynamic != dense reference");
    }

    #[test]
    fn dynamic_equals_static_p1() {
        check_dynamic_equals_static(1, 24, 3);
    }

    #[test]
    fn dynamic_equals_static_p4() {
        check_dynamic_equals_static(4, 24, 3);
    }

    #[test]
    fn dynamic_equals_static_p9() {
        check_dynamic_equals_static(9, 30, 2);
    }

    #[test]
    fn tracked_variant_matches_plain_and_fills_f() {
        let n: Index = 20;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples(s, n, 60)
                } else {
                    vec![]
                }
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed(11), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed(12), 1, &mut timer);
            let (mut c, mut f, _) =
                crate::summa::summa_bloom::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            let mut c2 = c.clone();
            let a_ups = random_triples(31 + comm.rank() as u64, n, 10);
            let b_ups = random_triples(41 + comm.rank() as u64, n, 10);
            apply_algebraic_updates_tracked::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                &mut f,
                a_ups.clone(),
                b_ups.clone(),
                1,
                &mut timer,
            );
            apply_algebraic_updates::<U64Plus>(
                &grid, &mut a2, &mut b2, &mut c2, a_ups, b_ups, 1, &mut timer,
            );
            // C identical either way; F covers C's pattern.
            let ct = c.to_global_triples();
            let ft = f.to_global_triples();
            let same_c = c.gather_to_root(comm) == c2.gather_to_root(comm);
            let f_keys: std::collections::BTreeSet<_> = ft.iter().map(|t| (t.row, t.col)).collect();
            let covers = ct.iter().all(|t| f_keys.contains(&(t.row, t.col)));
            (same_c, covers)
        });
        assert!(out.results.iter().all(|&(s, c)| s && c));
    }

    #[test]
    fn empty_updates_are_noops() {
        let n: Index = 16;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(3, n, 50)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let mut b = a.clone();
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let before = c.gather_to_root(comm);
            apply_algebraic_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                vec![],
                vec![],
                1,
                &mut timer,
            );
            before == c.gather_to_root(comm)
        });
        assert!(out.results.iter().all(|&x| x));
    }

    /// Shared-operand maintenance of C = A·A must agree with the
    /// two-operand engine driven with identical batches on a clone.
    #[test]
    fn shared_operand_matches_cloned_operands() {
        let n: Index = 22;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let t = if comm.rank() == 0 {
                    random_triples(7, n, 70)
                } else {
                    vec![]
                };
                let mut a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
                let mut a2 = a.clone();
                let mut b2 = a.clone();
                let (mut c, _) = summa::<U64Plus>(&grid, &a, &a, 1, &mut timer);
                let mut c2 = c.clone();
                for round in 0..3u64 {
                    let ups = random_triples(40 + round + comm.rank() as u64, n, 9);
                    let star = crate::update::build_update_matrix::<U64Plus>(
                        &grid,
                        n,
                        n,
                        ups.clone(),
                        crate::update::Dedup::Add,
                        &mut timer,
                    );
                    let (cstar, flops) = apply_shared_algebraic_prebuilt::<U64Plus>(
                        &grid, &mut a, &mut c, &star, 1, &mut timer,
                    );
                    assert!(cstar.nnz() == 0 || flops > 0);
                    apply_algebraic_updates::<U64Plus>(
                        &grid,
                        &mut a2,
                        &mut b2,
                        &mut c2,
                        ups.clone(),
                        ups,
                        1,
                        &mut timer,
                    );
                }
                (
                    a.gather_to_root(comm) == a2.gather_to_root(comm),
                    c.gather_to_root(comm) == c2.gather_to_root(comm),
                )
            });
            assert!(
                out.results.iter().all(|&(a_eq, c_eq)| a_eq && c_eq),
                "p={p}"
            );
        }
    }

    /// The tracked shared path maintains C identically and fills F over C's
    /// pattern.
    #[test]
    fn shared_tracked_maintains_filter() {
        let n: Index = 18;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(5, n, 60)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, mut f, _) =
                crate::summa::summa_bloom::<U64Plus>(&grid, &a, &a, 1, &mut timer);
            let ups = random_triples(61 + comm.rank() as u64, n, 12);
            let star = crate::update::build_update_matrix::<U64Plus>(
                &grid,
                n,
                n,
                ups,
                crate::update::Dedup::Add,
                &mut timer,
            );
            apply_shared_algebraic_prebuilt_tracked::<U64Plus>(
                &grid, &mut a, &mut c, &mut f, &star, 1, &mut timer,
            );
            // Invariant C = A·A against static recomputation; F covers C.
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &a, 1, &mut timer);
            let f_keys: std::collections::BTreeSet<_> = f
                .to_global_triples()
                .iter()
                .map(|t| (t.row, t.col))
                .collect();
            let covers = c
                .to_global_triples()
                .iter()
                .all(|t| f_keys.contains(&(t.row, t.col)));
            (
                c.gather_to_root(comm) == c_static.gather_to_root(comm),
                covers,
            )
        });
        assert!(out.results.iter().all(|&(eq, cov)| eq && cov));
    }

    /// The headline property: dynamic updates move far fewer bytes than a
    /// static SUMMA recomputation when updates are hypersparse.
    #[test]
    fn dynamic_volume_below_static_recompute() {
        let n: Index = 128;
        let nnz_initial = 4000;
        let batch = 8; // hypersparse update
        let dynamic = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(21, n, nnz_initial)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let before = dspgemm_mpi::CommCategory::all();
            let _ = before;
            // Measure only the update step: reset via snapshot is not
            // available inside; instead, run the update and report the
            // volume of the whole run minus a baseline run (handled by the
            // caller comparing totals of two runs that differ only in the
            // update step).
            let ups = random_triples(77 + comm.rank() as u64, n, batch);
            apply_algebraic_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                ups,
                vec![],
                1,
                &mut timer,
            );
            c.local_nnz()
        });
        let static_rerun = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(21, n, nnz_initial)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (c0, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            // Static strategy: apply updates, recompute from scratch.
            let ups = random_triples(77 + comm.rank() as u64, n, batch);
            let a_star = crate::update::build_update_matrix::<U64Plus>(
                &grid,
                n,
                n,
                ups,
                Dedup::Add,
                &mut timer,
            );
            apply_add::<U64Plus>(&mut a, &a_star, 1);
            let (c1, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let _ = (c0, c1);
            0usize
        });
        // Both runs share construction + initial SUMMA; the static rerun adds
        // a full SUMMA, the dynamic run adds Algorithm 1. Compare totals.
        assert!(
            dynamic.stats.total_bytes() < static_rerun.stats.total_bytes(),
            "dynamic {} >= static {}",
            dynamic.stats.total_bytes(),
            static_rerun.stats.total_bytes()
        );
    }
}
