//! Algorithm 1: MPI-parallel dynamic SpGEMM for algebraic updates.
//!
//! Given `A' = A + A*` and `B' = B + B*` (sums in the SpGEMM semiring), the
//! distributive law gives
//!
//! ```text
//! C' = C + C*,   C* := A*·B' + A·B*              (Eq. 1)
//! ```
//!
//! The algorithm computes `C*` **without broadcasting `A` or `B'`** — only
//! the hypersparse update blocks move:
//!
//! 1. process `(i,j)` sends `A*_{i,j}` and `B*_{i,j}` to its transposed peer
//!    `(j,i)` (one point-to-point round so the later broadcasts can run in
//!    parallel — Fig. 1a);
//! 2. `√p` rounds: in round `k`, `A*_{k,i}` is broadcast over process row
//!    `i` and `B*_{j,k}` over process column `j`; every rank multiplies
//!    locally (`Xⁱ_{k,j} = A*_{k,i}·B'_{i,j}` and `Yʲ_{i,k} = A_{i,j}·B*_{j,k}`,
//!    Fig. 1b);
//! 3. partial blocks are **aggregated non-locally**: `Xⁱ_{k,j}` reduces over
//!    column `j` onto process `(k,j)`, `Yʲ_{i,k}` over row `i` onto `(i,k)`
//!    (Fig. 1c) — a sparse merge-reduction, the price paid for not moving
//!    the big operands.
//!
//! Communication volume: `O(max(nnz(A*)+nnz(B*), nnz(C*))/√p)` versus
//! SUMMA's `O((nnz(A)+nnz(B'))/√p)` — the whole point of the paper.
//!
//! The module is generic over an [`XYKernel`] so the identical communication
//! structure also serves the Bloom-fused variant (engine sessions that
//! maintain the filter matrix `F`) and `COMPUTE_PATTERN` of Algorithm 2.

use crate::distmat::{DistDcsr, DistMat, Elem};
use crate::exec::Exec;
use crate::grid::{block_range, Grid};
use crate::phase;
use crate::pipeline::{await_into_phase, run_rounds, Schedule};
use crate::update::{apply_add_exec, build_update_matrix, Dedup};
use dspgemm_mpi::Request;
use dspgemm_sparse::local_mm::{
    spgemm_bloom_with, spgemm_pattern_with, spgemm_with, KernelPlan, MmOutput,
};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Dcsr, DhbMatrix, Index, RowScan, Triple};
use dspgemm_util::stats::PhaseTimer;
use std::sync::Arc;

/// The local multiply/merge flavor plugged into the round structure. Each
/// kernel selects its payload-matching workspace pool from the session's
/// [`Exec`] via [`XYKernel::plan`], so every flavor runs scheduled and
/// pooled.
pub trait XYKernel<S: Semiring>: 'static {
    /// Partial-block element type.
    type Out: Elem;

    /// The [`KernelPlan`] (schedule + pooled workspaces) this flavor runs
    /// under, drawn from the session's [`Exec`].
    fn plan(exec: &Exec<S>) -> KernelPlan<'_, Self::Out>;

    /// `X = A*_{k,i} · B'_{i,j}` (hypersparse left, dynamic right).
    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, Self::Out>,
    ) -> MmOutput<Self::Out>;

    /// `Y = A_{i,j} · B*_{j,k}` (dynamic left, hypersparse right via the
    /// O(1) row-reader adapter).
    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, Self::Out>,
    ) -> MmOutput<Self::Out>;

    /// Combines coinciding entries during aggregation.
    fn merge(a: Self::Out, b: Self::Out) -> Self::Out;
}

/// Values only — the production algebraic path.
#[derive(Debug)]
pub struct PlainKernel;

impl<S: Semiring> XYKernel<S> for PlainKernel {
    type Out = S::Elem;

    fn plan(exec: &Exec<S>) -> KernelPlan<'_, S::Elem> {
        exec.plain()
    }

    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        _k_offset: Index,
        plan: KernelPlan<'_, S::Elem>,
    ) -> MmOutput<S::Elem> {
        spgemm_with::<S, _, _>(a_star, b_new, plan)
    }

    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        _k_offset: Index,
        plan: KernelPlan<'_, S::Elem>,
    ) -> MmOutput<S::Elem> {
        spgemm_with::<S, _, _>(a_old, &b_star.row_reader(), plan)
    }

    fn merge(a: S::Elem, b: S::Elem) -> S::Elem {
        S::add(a, b)
    }
}

/// Values fused with Bloom bitfields — for engine sessions maintaining `F`.
#[derive(Debug)]
pub struct BloomKernel;

impl<S: Semiring> XYKernel<S> for BloomKernel {
    type Out = (S::Elem, u64);

    fn plan(exec: &Exec<S>) -> KernelPlan<'_, (S::Elem, u64)> {
        exec.fused()
    }

    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, (S::Elem, u64)>,
    ) -> MmOutput<(S::Elem, u64)> {
        spgemm_bloom_with::<S, _, _>(a_star, b_new, k_offset, plan)
    }

    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, (S::Elem, u64)>,
    ) -> MmOutput<(S::Elem, u64)> {
        spgemm_bloom_with::<S, _, _>(a_old, &b_star.row_reader(), k_offset, plan)
    }

    fn merge(a: (S::Elem, u64), b: (S::Elem, u64)) -> (S::Elem, u64) {
        (S::add(a.0, b.0), a.1 | b.1)
    }
}

/// Structure + Bloom bits only, no values — `COMPUTE_PATTERN` of Algorithm 2.
#[derive(Debug)]
pub struct PatternKernel;

impl<S: Semiring> XYKernel<S> for PatternKernel {
    type Out = u64;

    fn plan(exec: &Exec<S>) -> KernelPlan<'_, u64> {
        exec.pattern()
    }

    fn mul_x(
        a_star: &Dcsr<S::Elem>,
        b_new: &DhbMatrix<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, u64>,
    ) -> MmOutput<u64> {
        spgemm_pattern_with(a_star, b_new, k_offset, plan)
    }

    fn mul_y(
        a_old: &DhbMatrix<S::Elem>,
        b_star: &Dcsr<S::Elem>,
        k_offset: Index,
        plan: KernelPlan<'_, u64>,
    ) -> MmOutput<u64> {
        spgemm_pattern_with(a_old, &b_star.row_reader(), k_offset, plan)
    }

    fn merge(a: u64, b: u64) -> u64 {
        a | b
    }
}

/// Runs the transpose exchange, `√p` broadcast rounds, local multiplications
/// and sparse merge-reductions of Algorithm 1, returning this rank's block
/// of `C* = A*·B' + A·B*` plus the local flop count. Collective over the
/// grid.
///
/// Inputs obey Eq. 1's timing: `a_old` is `A` *before* its updates, `b_new`
/// is `B'` *after* its updates.
pub fn compute_cstar<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a_old: &DistMat<S::Elem>,
    b_new: &DistMat<S::Elem>,
    a_star: &DistDcsr<S::Elem>,
    b_star: &DistDcsr<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    compute_cstar_exec::<S, K>(
        grid,
        a_old,
        b_new,
        a_star,
        b_star,
        &Exec::new(threads),
        timer,
    )
}

/// [`compute_cstar`] under an explicit [`Exec`] (persistent workspace pools
/// + row schedule).
pub fn compute_cstar_exec<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a_old: &DistMat<S::Elem>,
    b_new: &DistMat<S::Elem>,
    a_star: &DistDcsr<S::Elem>,
    b_star: &DistDcsr<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    let q = grid.q();
    let (i, j) = grid.coords();
    let inner = a_old.info().ncols; // contraction dimension (= B rows)
    let my_block_rows = a_old.info().local_rows();
    let my_block_cols = b_new.info().local_cols();

    // Empty-side elision: a globally empty update matrix contributes nothing
    // to Eq. 1, so its whole pass (transpose send, broadcasts, multiplies,
    // reductions) is skipped. The decision is collective-safe because it is
    // made from the allreduced global nnz, agreed on all ranks. This is the
    // common case in the paper's Fig. 9 protocol, where `B` is static.
    let (a_star_nnz, b_star_nnz) = {
        let both = grid.world().allreduce(
            [a_star.local_nnz() as u64, b_star.local_nnz() as u64],
            |x, y| [x[0] + y[0], x[1] + y[1]],
        );
        (both[0], both[1])
    };

    // Step 1: transpose exchange — A*_{i,j} to (j,i); likewise B*. Blocks
    // travel as shared handles, and both directions of both exchanges are
    // posted nonblocking (irecv first, then the buffered sends), so the two
    // update blocks cross the wire concurrently instead of serializing.
    const TAG_AT: u64 = 101;
    const TAG_BT: u64 = 102;
    let peer = grid.transpose_rank();
    type Exchanged<V> = (Option<Arc<Dcsr<V>>>, Option<Arc<Dcsr<V>>>);
    let (at_blk, bt_blk): Exchanged<S::Elem> = timer.time(phase::SEND_RECV, || {
        if peer == grid.world().rank() {
            let at = (a_star_nnz != 0).then(|| a_star.block_shared());
            let bt = (b_star_nnz != 0).then(|| b_star.block_shared());
            return (at, bt);
        }
        let at_recv =
            (a_star_nnz != 0).then(|| grid.world().irecv_shared::<Dcsr<S::Elem>>(peer, TAG_AT));
        let bt_recv =
            (b_star_nnz != 0).then(|| grid.world().irecv_shared::<Dcsr<S::Elem>>(peer, TAG_BT));
        if a_star_nnz != 0 {
            grid.world()
                .isend_shared(peer, TAG_AT, a_star.block_shared())
                .wait();
        }
        if b_star_nnz != 0 {
            grid.world()
                .isend_shared(peer, TAG_BT, b_star.block_shared())
                .wait();
        }
        (at_recv.map(Request::wait), bt_recv.map(Request::wait))
    });

    // Step 2 + 3: √p rounds of broadcasts, local multiplies, aggregation —
    // pipelined: round k+1's update-block broadcasts are in flight while
    // round k multiplies and merge-reduces (the progress engine forwards
    // their tree edges even while ranks are blocked inside the reductions).
    let mut flops = 0u64;
    let mut x_mine: Option<Dcsr<K::Out>> = None;
    let mut y_mine: Option<Dcsr<K::Out>> = None;
    type UpdFlight<V> = (Option<Request<Arc<Dcsr<V>>>>, Option<Request<Arc<Dcsr<V>>>>);
    run_rounds(
        &mut (timer, &mut flops, &mut x_mine, &mut y_mine),
        q,
        Schedule::Overlap,
        |_ctx, k| -> UpdFlight<S::Elem> {
            // A*_{k,i} over process row i (its holder after the transpose
            // exchange is (i,k), i.e. row-comm member k); B*_{j,k} over
            // process column j (holder (k,j) = col-comm member k).
            let ra = at_blk.as_ref().map(|at| {
                grid.row_comm()
                    .ibcast_shared(k, if j == k { Some(Arc::clone(at)) } else { None })
            });
            let rb = bt_blk.as_ref().map(|bt| {
                grid.col_comm()
                    .ibcast_shared(k, if i == k { Some(Arc::clone(bt)) } else { None })
            });
            (ra, rb)
        },
        |ctx, _k, (ra, rb)| {
            let a_bcast = ra.map(|r| await_into_phase(r, ctx.0, phase::BCAST));
            let b_bcast = rb.map(|r| await_into_phase(r, ctx.0, phase::BCAST));
            (a_bcast, b_bcast)
        },
        |ctx, k, (a_bcast, b_bcast)| {
            let (timer, flops, x_mine, y_mine) = ctx;
            // X pass: multiply into B', reduce onto (k,j) via column j.
            if let Some(a_bcast) = a_bcast {
                let x_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_x(
                        &a_bcast,
                        b_new.block(),
                        block_range(inner, q, i).start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&x_part.thread_flops);
                **flops += x_part.flops;
                let x_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.col_comm()
                        .reduce(k, x_part.result, |a, b| Dcsr::merge_with(&a, &b, K::merge))
                });
                if let Some(x) = x_red {
                    debug_assert_eq!(i, k);
                    **x_mine = Some(x);
                }
            }
            // Y pass: multiply from A, reduce onto (i,k) via row i.
            if let Some(b_bcast) = b_bcast {
                let y_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_y(
                        a_old.block(),
                        &b_bcast,
                        block_range(inner, q, j).start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&y_part.thread_flops);
                **flops += y_part.flops;
                let y_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.row_comm()
                        .reduce(k, y_part.result, |a, b| Dcsr::merge_with(&a, &b, K::merge))
                });
                if let Some(y) = y_red {
                    debug_assert_eq!(j, k);
                    **y_mine = Some(y);
                }
            }
        },
    );
    let cstar = match (x_mine, y_mine) {
        (Some(x), Some(y)) => Dcsr::merge_with(&x, &y, K::merge),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => Dcsr::empty(my_block_rows, my_block_cols),
    };
    (cstar, flops)
}

/// Shared-operand variant of [`compute_cstar`]: this rank's block of
/// `C* = A*·A' + A·A*` for a maintained *square* product `C = A · A`, where
/// both Eq.-1 terms draw on the **same** stored matrix. Collective.
///
/// The interleaved round structure of [`compute_cstar`] needs the old `A`
/// (for the `Y` pass) and the new `A'` (for the `X` pass) simultaneously,
/// which a single stored operand cannot provide. Instead of cloning the
/// whole matrix, the two passes are sequenced around the update itself:
///
/// 1. `√p` `Y` rounds with the *old* `A`: `Yʲ_{i,k} = A_{i,j}·A*_{j,k}`,
///    reduced over row `i` onto `(i,k)`;
/// 2. `apply` turns `A` into `A'` in place (purely local);
/// 3. `√p` `X` rounds with the *new* `A'`: `Xⁱ_{k,j} = A*_{k,i}·A'_{i,j}`,
///    reduced over column `j` onto `(k,j)`.
///
/// One transpose exchange of the single update block replaces Algorithm 1's
/// two, and the communication volume is halved relative to maintaining a
/// lock-stepped clone of `A` as the second operand (each update batch is
/// redistributed, exchanged and broadcast once instead of twice).
pub fn compute_cstar_shared<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    star: &DistDcsr<S::Elem>,
    apply: impl FnOnce(&mut DistMat<S::Elem>),
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    compute_cstar_shared_exec::<S, K>(grid, a, star, apply, &Exec::new(threads), timer)
}

/// [`compute_cstar_shared`] under an explicit [`Exec`].
pub fn compute_cstar_shared_exec<S: Semiring, K: XYKernel<S>>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    star: &DistDcsr<S::Elem>,
    apply: impl FnOnce(&mut DistMat<S::Elem>),
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<K::Out>, u64) {
    assert_eq!(
        a.info().nrows,
        a.info().ncols,
        "shared-operand dynamic SpGEMM maintains a square product C = A·A"
    );
    let q = grid.q();
    let (i, j) = grid.coords();
    let inner = a.info().ncols;
    let my_block_rows = a.info().local_rows();
    let my_block_cols = a.info().local_cols();

    // Empty-batch elision, agreed collectively (cf. `compute_cstar`).
    let star_nnz = star.global_nnz(grid);
    if star_nnz == 0 {
        timer.time(phase::LOCAL_UPDATE, || apply(a));
        return (Dcsr::empty(my_block_rows, my_block_cols), 0);
    }

    // One transpose exchange serves both passes: rank (i,j) obtains
    // A*_{j,i}, so in round k the row-comm member k of row i holds A*_{k,i}
    // and the col-comm member k of column j holds A*_{k,j}ᵀ-positioned
    // block, exactly as in Algorithm 1.
    const TAG_SHARED: u64 = 104;
    let peer = grid.transpose_rank();
    let star_t: Arc<Dcsr<S::Elem>> = timer.time(phase::SEND_RECV, || {
        if peer == grid.world().rank() {
            star.block_shared()
        } else {
            grid.world()
                .sendrecv_shared(peer, star.block_shared(), peer, TAG_SHARED)
        }
    });

    let mut flops = 0u64;

    // Y pass against the old A — pipelined (round k+1's broadcast of the
    // transposed update block is in flight while round k multiplies and
    // reduces).
    let mut y_mine: Option<Dcsr<K::Out>> = None;
    {
        let a_ref = &*a;
        run_rounds(
            &mut (&mut *timer, &mut flops, &mut y_mine),
            q,
            Schedule::Overlap,
            |_ctx, k| {
                grid.col_comm().ibcast_shared(
                    k,
                    if i == k {
                        Some(Arc::clone(&star_t))
                    } else {
                        None
                    },
                )
            },
            |ctx, _k, req| await_into_phase(req, ctx.0, phase::BCAST),
            |ctx, k, b_bcast| {
                let (timer, flops, y_mine) = ctx;
                let y_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_y(
                        a_ref.block(),
                        &b_bcast,
                        block_range(inner, q, j).start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&y_part.thread_flops);
                **flops += y_part.flops;
                let y_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.row_comm()
                        .reduce(k, y_part.result, |x, y| Dcsr::merge_with(&x, &y, K::merge))
                });
                if let Some(y) = y_red {
                    debug_assert_eq!(j, k);
                    **y_mine = Some(y);
                }
            },
        );
    }

    // A → A' (purely local).
    timer.time(phase::LOCAL_UPDATE, || apply(a));

    // X pass against the new A' — pipelined likewise.
    let mut x_mine: Option<Dcsr<K::Out>> = None;
    {
        let a_ref = &*a;
        run_rounds(
            &mut (&mut *timer, &mut flops, &mut x_mine),
            q,
            Schedule::Overlap,
            |_ctx, k| {
                grid.row_comm().ibcast_shared(
                    k,
                    if j == k {
                        Some(Arc::clone(&star_t))
                    } else {
                        None
                    },
                )
            },
            |ctx, _k, req| await_into_phase(req, ctx.0, phase::BCAST),
            |ctx, k, a_bcast| {
                let (timer, flops, x_mine) = ctx;
                let x_part = timer.time(phase::LOCAL_MULT, || {
                    K::mul_x(
                        &a_bcast,
                        a_ref.block(),
                        block_range(inner, q, i).start,
                        K::plan(exec),
                    )
                });
                timer.add_thread_flops(&x_part.thread_flops);
                **flops += x_part.flops;
                let x_red = timer.time(phase::REDUCE_SCATTER, || {
                    grid.col_comm()
                        .reduce(k, x_part.result, |x, y| Dcsr::merge_with(&x, &y, K::merge))
                });
                if let Some(x) = x_red {
                    debug_assert_eq!(i, k);
                    **x_mine = Some(x);
                }
            },
        );
    }

    let cstar = match (x_mine, y_mine) {
        (Some(x), Some(y)) => Dcsr::merge_with(&x, &y, K::merge),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => Dcsr::empty(my_block_rows, my_block_cols),
    };
    (cstar, flops)
}

/// Shared-operand algebraic update from a **pre-built** update matrix:
/// maintains `C = A · A` through `A' = A + A*` and returns this rank's
/// `C*` block (the local delta merged into `C`) plus the flop count — the
/// delta lets callers (the analytics session's views) observe exactly which
/// product entries changed without a second pass. Collective.
///
/// The caller performs the redistribution once
/// ([`crate::update::build_update_matrix`] with [`Dedup::Add`]) and may feed
/// the same `A*` to any number of consumers; this is the "one redistribution
/// pays for all views" contract.
pub fn apply_shared_algebraic_prebuilt<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    star: &DistDcsr<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<S::Elem>, u64) {
    apply_shared_algebraic_prebuilt_exec::<S>(grid, a, c, star, &Exec::new(threads), timer)
}

/// [`apply_shared_algebraic_prebuilt`] under an explicit [`Exec`] — the
/// analytics session's entry point, so view refreshes reuse the session's
/// pooled workspaces.
pub fn apply_shared_algebraic_prebuilt_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    star: &DistDcsr<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<S::Elem>, u64) {
    let (cstar, flops) = compute_cstar_shared_exec::<S, PlainKernel>(
        grid,
        a,
        star,
        |m| apply_add_exec::<S>(m, star, exec),
        exec,
        timer,
    );
    timer.time(phase::LOCAL_UPDATE, || {
        if cstar.nnz() == 0 {
            return; // keep the block's snapshot image valid (COW publish)
        }
        let block = c.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &v) in cols.iter().zip(vals) {
                block.add_entry::<S>(r, cc, v);
            }
        });
    });
    (cstar, flops)
}

/// Like [`apply_shared_algebraic_prebuilt`], additionally maintaining the
/// Bloom filter matrix `F` (required when general updates may follow). The
/// returned `C*` block carries `(value, bitfield)` pairs. Collective.
pub fn apply_shared_algebraic_prebuilt_tracked<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    star: &DistDcsr<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    apply_shared_algebraic_prebuilt_tracked_exec::<S>(
        grid,
        a,
        c,
        f,
        star,
        &Exec::new(threads),
        timer,
    )
}

/// [`apply_shared_algebraic_prebuilt_tracked`] under an explicit [`Exec`].
pub fn apply_shared_algebraic_prebuilt_tracked_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    star: &DistDcsr<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    let (cstar, flops) = compute_cstar_shared_exec::<S, BloomKernel>(
        grid,
        a,
        star,
        |m| apply_add_exec::<S>(m, star, exec),
        exec,
        timer,
    );
    timer.time(phase::LOCAL_UPDATE, || {
        if cstar.nnz() == 0 {
            return; // keep the blocks' snapshot images valid (COW publish)
        }
        let c_block = c.block_mut();
        let f_block = f.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &(v, bits)) in cols.iter().zip(vals) {
                c_block.add_entry::<S>(r, cc, v);
                f_block.combine_entry(r, cc, bits, |x, y| x | y);
            }
        });
    });
    (cstar, flops)
}

/// Full algebraic-update step on an `(A, B, C)` triple: builds the update
/// matrices from globally-indexed tuples, applies them, and patches `C` via
/// Algorithm 1. Returns the local flop count. Collective over the grid.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_algebraic_updates_exec::<S>(
        grid,
        a,
        b,
        c,
        a_tuples,
        b_tuples,
        &Exec::new(threads),
        timer,
    )
}

/// [`apply_algebraic_updates`] under an explicit [`Exec`] — the engine's
/// entry point, so consecutive update batches reuse the session pools.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    let (a_star, b_star) = timer.time(phase::SCATTER, || {
        let mut inner = PhaseTimer::new();
        let a_star = build_update_matrix::<S>(
            grid,
            a.info().nrows,
            a.info().ncols,
            a_tuples,
            Dedup::Add,
            &mut inner,
        );
        let b_star = build_update_matrix::<S>(
            grid,
            b.info().nrows,
            b.info().ncols,
            b_tuples,
            Dedup::Add,
            &mut inner,
        );
        (a_star, b_star)
    });

    // Eq. 1 ordering: B must be B' during the multiplication, A must still
    // be the old A.
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(b, &b_star, exec);
    });
    let (cstar, flops) =
        compute_cstar_exec::<S, PlainKernel>(grid, a, b, &a_star, &b_star, exec, timer);
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(a, &a_star, exec);
        if cstar.nnz() == 0 {
            return; // keep the block's snapshot image valid (COW publish)
        }
        let block = c.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &v) in cols.iter().zip(vals) {
                block.add_entry::<S>(r, cc, v);
            }
        });
    });
    flops
}

/// Algebraic-update step that also maintains the Bloom filter matrix `F`
/// (required when general updates may follow). Identical communication
/// structure; partial blocks carry `(value, bitfield)` pairs.
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_tracked<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_algebraic_updates_tracked_exec::<S>(
        grid,
        a,
        b,
        c,
        f,
        a_tuples,
        b_tuples,
        &Exec::new(threads),
        timer,
    )
}

/// [`apply_algebraic_updates_tracked`] under an explicit [`Exec`].
#[allow(clippy::too_many_arguments)]
pub fn apply_algebraic_updates_tracked_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_tuples: Vec<Triple<S::Elem>>,
    b_tuples: Vec<Triple<S::Elem>>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    let (a_star, b_star) = timer.time(phase::SCATTER, || {
        let mut inner = PhaseTimer::new();
        let a_star = build_update_matrix::<S>(
            grid,
            a.info().nrows,
            a.info().ncols,
            a_tuples,
            Dedup::Add,
            &mut inner,
        );
        let b_star = build_update_matrix::<S>(
            grid,
            b.info().nrows,
            b.info().ncols,
            b_tuples,
            Dedup::Add,
            &mut inner,
        );
        (a_star, b_star)
    });
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(b, &b_star, exec);
    });
    let (cstar, flops) =
        compute_cstar_exec::<S, BloomKernel>(grid, a, b, &a_star, &b_star, exec, timer);
    timer.time(phase::LOCAL_UPDATE, || {
        apply_add_exec::<S>(a, &a_star, exec);
        if cstar.nnz() == 0 {
            return; // keep the blocks' snapshot images valid (COW publish)
        }
        let c_block = c.block_mut();
        let f_block = f.block_mut();
        cstar.scan_rows(|r, cols, vals| {
            for (&cc, &(v, bits)) in cols.iter().zip(vals) {
                c_block.add_entry::<S>(r, cc, v);
                f_block.combine_entry(r, cc, bits, |x, y| x | y);
            }
        });
    });
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::summa;
    use crate::update::apply_add;
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    /// End-to-end: dynamic result after several batches must equal a static
    /// recomputation of A'·B' from scratch.
    fn check_dynamic_equals_static(p: usize, n: Index, batches: usize) {
        let out = run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64, count: usize| {
                if comm.rank() == 0 {
                    random_triples(s, n, count)
                } else {
                    vec![]
                }
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed(1, 80), 2, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed(2, 80), 2, &mut timer);
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 2, &mut timer);
            for round in 0..batches as u64 {
                // Every rank contributes its own update tuples.
                let a_ups = random_triples(100 + round * 7 + comm.rank() as u64, n, 15);
                let b_ups = random_triples(500 + round * 7 + comm.rank() as u64, n, 15);
                apply_algebraic_updates::<U64Plus>(
                    &grid, &mut a, &mut b, &mut c, a_ups, b_ups, 2, &mut timer,
                );
            }
            // Static recomputation from the final A', B'.
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &b, 2, &mut timer);
            (
                c.gather_to_root(comm),
                c_static.gather_to_root(comm),
                a.gather_to_root(comm),
                b.gather_to_root(comm),
            )
        });
        let (c_dyn, c_static, a_fin, b_fin) = &out.results[0];
        let c_dyn = c_dyn.as_ref().unwrap();
        let c_static = c_static.as_ref().unwrap();
        let n_us = n;
        let dd = Dense::from_triples::<U64Plus>(n_us, n_us, c_dyn);
        let ds = Dense::from_triples::<U64Plus>(n_us, n_us, c_static);
        assert_eq!(dd.diff(&ds), vec![], "p={p}: dynamic != static");
        // Also check against a fully independent dense reference.
        let da = Dense::from_triples::<U64Plus>(n_us, n_us, a_fin.as_ref().unwrap());
        let db = Dense::from_triples::<U64Plus>(n_us, n_us, b_fin.as_ref().unwrap());
        let dref = da.matmul::<U64Plus>(&db);
        assert_eq!(dd.diff(&dref), vec![], "p={p}: dynamic != dense reference");
    }

    #[test]
    fn dynamic_equals_static_p1() {
        check_dynamic_equals_static(1, 24, 3);
    }

    #[test]
    fn dynamic_equals_static_p4() {
        check_dynamic_equals_static(4, 24, 3);
    }

    #[test]
    fn dynamic_equals_static_p9() {
        check_dynamic_equals_static(9, 30, 2);
    }

    #[test]
    fn tracked_variant_matches_plain_and_fills_f() {
        let n: Index = 20;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples(s, n, 60)
                } else {
                    vec![]
                }
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed(11), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed(12), 1, &mut timer);
            let (mut c, mut f, _) =
                crate::summa::summa_bloom::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            let mut c2 = c.clone();
            let a_ups = random_triples(31 + comm.rank() as u64, n, 10);
            let b_ups = random_triples(41 + comm.rank() as u64, n, 10);
            apply_algebraic_updates_tracked::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                &mut f,
                a_ups.clone(),
                b_ups.clone(),
                1,
                &mut timer,
            );
            apply_algebraic_updates::<U64Plus>(
                &grid, &mut a2, &mut b2, &mut c2, a_ups, b_ups, 1, &mut timer,
            );
            // C identical either way; F covers C's pattern.
            let ct = c.to_global_triples();
            let ft = f.to_global_triples();
            let same_c = c.gather_to_root(comm) == c2.gather_to_root(comm);
            let f_keys: std::collections::BTreeSet<_> = ft.iter().map(|t| (t.row, t.col)).collect();
            let covers = ct.iter().all(|t| f_keys.contains(&(t.row, t.col)));
            (same_c, covers)
        });
        assert!(out.results.iter().all(|&(s, c)| s && c));
    }

    #[test]
    fn empty_updates_are_noops() {
        let n: Index = 16;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(3, n, 50)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let mut b = a.clone();
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let before = c.gather_to_root(comm);
            apply_algebraic_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                vec![],
                vec![],
                1,
                &mut timer,
            );
            before == c.gather_to_root(comm)
        });
        assert!(out.results.iter().all(|&x| x));
    }

    /// Shared-operand maintenance of C = A·A must agree with the
    /// two-operand engine driven with identical batches on a clone.
    #[test]
    fn shared_operand_matches_cloned_operands() {
        let n: Index = 22;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let t = if comm.rank() == 0 {
                    random_triples(7, n, 70)
                } else {
                    vec![]
                };
                let mut a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
                let mut a2 = a.clone();
                let mut b2 = a.clone();
                let (mut c, _) = summa::<U64Plus>(&grid, &a, &a, 1, &mut timer);
                let mut c2 = c.clone();
                for round in 0..3u64 {
                    let ups = random_triples(40 + round + comm.rank() as u64, n, 9);
                    let star = crate::update::build_update_matrix::<U64Plus>(
                        &grid,
                        n,
                        n,
                        ups.clone(),
                        crate::update::Dedup::Add,
                        &mut timer,
                    );
                    let (cstar, flops) = apply_shared_algebraic_prebuilt::<U64Plus>(
                        &grid, &mut a, &mut c, &star, 1, &mut timer,
                    );
                    assert!(cstar.nnz() == 0 || flops > 0);
                    apply_algebraic_updates::<U64Plus>(
                        &grid,
                        &mut a2,
                        &mut b2,
                        &mut c2,
                        ups.clone(),
                        ups,
                        1,
                        &mut timer,
                    );
                }
                (
                    a.gather_to_root(comm) == a2.gather_to_root(comm),
                    c.gather_to_root(comm) == c2.gather_to_root(comm),
                )
            });
            assert!(
                out.results.iter().all(|&(a_eq, c_eq)| a_eq && c_eq),
                "p={p}"
            );
        }
    }

    /// The tracked shared path maintains C identically and fills F over C's
    /// pattern.
    #[test]
    fn shared_tracked_maintains_filter() {
        let n: Index = 18;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(5, n, 60)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, mut f, _) =
                crate::summa::summa_bloom::<U64Plus>(&grid, &a, &a, 1, &mut timer);
            let ups = random_triples(61 + comm.rank() as u64, n, 12);
            let star = crate::update::build_update_matrix::<U64Plus>(
                &grid,
                n,
                n,
                ups,
                crate::update::Dedup::Add,
                &mut timer,
            );
            apply_shared_algebraic_prebuilt_tracked::<U64Plus>(
                &grid, &mut a, &mut c, &mut f, &star, 1, &mut timer,
            );
            // Invariant C = A·A against static recomputation; F covers C.
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &a, 1, &mut timer);
            let f_keys: std::collections::BTreeSet<_> = f
                .to_global_triples()
                .iter()
                .map(|t| (t.row, t.col))
                .collect();
            let covers = c
                .to_global_triples()
                .iter()
                .all(|t| f_keys.contains(&(t.row, t.col)));
            (
                c.gather_to_root(comm) == c_static.gather_to_root(comm),
                covers,
            )
        });
        assert!(out.results.iter().all(|&(eq, cov)| eq && cov));
    }

    /// The headline property: dynamic updates move far fewer bytes than a
    /// static SUMMA recomputation when updates are hypersparse.
    #[test]
    fn dynamic_volume_below_static_recompute() {
        let n: Index = 128;
        let nnz_initial = 4000;
        let batch = 8; // hypersparse update
        let dynamic = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(21, n, nnz_initial)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let before = dspgemm_mpi::CommCategory::all();
            let _ = before;
            // Measure only the update step: reset via snapshot is not
            // available inside; instead, run the update and report the
            // volume of the whole run minus a baseline run (handled by the
            // caller comparing totals of two runs that differ only in the
            // update step).
            let ups = random_triples(77 + comm.rank() as u64, n, batch);
            apply_algebraic_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                ups,
                vec![],
                1,
                &mut timer,
            );
            c.local_nnz()
        });
        let static_rerun = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(21, n, nnz_initial)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (c0, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            // Static strategy: apply updates, recompute from scratch.
            let ups = random_triples(77 + comm.rank() as u64, n, batch);
            let a_star = build_update_matrix::<U64Plus>(&grid, n, n, ups, Dedup::Add, &mut timer);
            apply_add::<U64Plus>(&mut a, &a_star, 1);
            let (c1, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let _ = (c0, c1);
            0usize
        });
        // Both runs share construction + initial SUMMA; the static rerun adds
        // a full SUMMA, the dynamic run adds Algorithm 1. Compare totals.
        assert!(
            dynamic.stats.total_bytes() < static_rerun.stats.total_bytes(),
            "dynamic {} >= static {}",
            dynamic.stats.total_bytes(),
            static_rerun.stats.total_bytes()
        );
    }
}
