//! Algorithm 2: MPI-parallel dynamic SpGEMM for general updates.
//!
//! General updates are "incompatible" with the semiring — deletions, value
//! increases under `(min, +)`, unsetting under `(∨, ∧)` — so `C'` cannot be
//! patched additively. But `C'` can only differ from `C` at positions that
//! are non-zero in `C* = A*·B' + A·B*` (structurally), so the algorithm
//! *recomputes exactly those positions*, pruning everything else:
//!
//! 1. `COMPUTE_PATTERN` — the Algorithm-1 machinery with the pattern kernel
//!    produces each rank's block of `C*`'s sparsity pattern together with
//!    the Bloom filter `F*` of contributing inner indices;
//! 2. `E = (F ⊕ F*) masked at C*`, reduced bitwise-or over each process row
//!    into the per-row filter vector `R`;
//! 3. `A^R` — the rows `i` of `A'` with `r_i ≠ 0`, keeping only columns `k`
//!    whose bit `k mod 64` is set in `r_i` (a *superset* of what is needed:
//!    Bloom filters have no false negatives, so nothing required is lost);
//! 4. a masked SUMMA-like pass broadcasts `A^R` over rows and `C*` over
//!    columns, recomputes `Z = A^R·B'` masked at `C*` (with updated filter
//!    `H`), and merge-reduces partials onto the owners;
//! 5. locally, `Z` replaces the masked entries of `C` (absent ⇒ the entry
//!    became structurally zero ⇒ delete), and `H` replaces them in `F`.

use crate::distmat::{DistDcsr, DistMat, Elem};
use crate::dyn_algebraic::{
    compute_cstar_exec, compute_cstar_shared_exec, PatternKernel, StarView, TransposeMode,
};
use crate::exec::Exec;
use crate::grid::Grid;
use crate::layout::{uniform_layout, Layout};
use crate::phase;
use crate::pipeline::{await_into_phase, run_rounds, Schedule};
use crate::update::{apply_mask_exec, apply_merge_exec, build_update_matrix_in, Dedup};
use dspgemm_sparse::bloom::row_or_reduce;
use dspgemm_sparse::masked_mm::{masked_spgemm_bloom_with, MaskSet};
use dspgemm_sparse::ops::extract_filtered;
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Dcsr, Index, RowScan, Triple};
use dspgemm_util::hash::FxHashMap;
use dspgemm_util::stats::PhaseTimer;
use std::sync::Arc;

/// A batch of general updates with global indices: value writes (`sets`)
/// and structural deletions (`deletes`).
#[derive(Debug, Clone, Default)]
pub struct GeneralUpdates<V> {
    /// `(i, j, x)`: set position `(i, j)` to `x` (insert or overwrite).
    pub sets: Vec<Triple<V>>,
    /// Positions to remove.
    pub deletes: Vec<(Index, Index)>,
}

impl<V: Elem> GeneralUpdates<V> {
    /// An empty batch.
    pub fn new() -> Self {
        Self {
            sets: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Total number of update tuples.
    pub fn len(&self) -> usize {
        self.sets.len() + self.deletes.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty() && self.deletes.is_empty()
    }
}

/// Distributed update-matrix triple for one operand of a general update:
/// the MERGE matrix (sets), the MASK matrix (deletes) and the combined
/// structural pattern `A*`. Produced by [`prepare_general_update`]; holding
/// it lets one redistribution feed several consumers (the analytics
/// session's shared-batch contract).
pub struct PreparedGeneral<V> {
    /// Redistributed `sets` as a hypersparse MERGE matrix.
    pub set_mat: DistDcsr<V>,
    /// Redistributed `deletes` as a hypersparse MASK matrix.
    pub del_mat: DistDcsr<V>,
    /// Structural union of both — the `A*` of `COMPUTE_PATTERN`.
    pub star: DistDcsr<V>,
    /// `star` rebuilt in transposed layout (flipped tuples, swapped
    /// dimensions) when the batch was prepared for
    /// [`TransposeMode::Virtual`]: `COMPUTE_PATTERN`'s round roots then
    /// resolve their blocks by local transposition instead of the wire
    /// exchange (Section V-C). `None` ⇒ physical resolution.
    pub star_t: Option<DistDcsr<V>>,
}

impl<V: Elem> PreparedGeneral<V> {
    /// The operand view `COMPUTE_PATTERN` consumes: the transposed-layout
    /// build when present, else the natural star.
    pub fn view(&self) -> StarView<'_, V> {
        match &self.star_t {
            Some(t) => StarView::Transposed(t),
            None => StarView::Natural(&self.star),
        }
    }
}

/// Redistributes one operand's general-update batch (the only communication
/// of update assembly) and builds its MERGE/MASK/pattern matrices.
/// Collective over the grid. Resolution stays physical (`star_t = None`);
/// use [`prepare_general_update_mode`] to opt into virtual transposition.
pub fn prepare_general_update<S: Semiring>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    upd: GeneralUpdates<S::Elem>,
    timer: &mut PhaseTimer,
) -> PreparedGeneral<S::Elem> {
    prepare_general_update_mode::<S>(grid, nrows, ncols, upd, TransposeMode::Physical, timer)
}

/// [`prepare_general_update`] under an explicit [`TransposeMode`]. Under
/// [`TransposeMode::Virtual`] the combined structural pattern is
/// additionally redistributed with flipped tuples and swapped dimensions;
/// ordering the flipped stream deletes-first (zero values), then sets, and
/// deduplicating [`Dedup::LastWins`] reproduces the natural star's values
/// exactly — a position covered by any set keeps the last set value, a
/// delete-only position keeps the semiring zero — so `COMPUTE_PATTERN`'s
/// broadcast payloads are bit-identical across modes. `mode` must agree on
/// all ranks (it changes the collective schedule). Collective.
pub fn prepare_general_update_mode<S: Semiring>(
    grid: &Grid,
    nrows: Index,
    ncols: Index,
    upd: GeneralUpdates<S::Elem>,
    mode: TransposeMode,
    timer: &mut PhaseTimer,
) -> PreparedGeneral<S::Elem> {
    prepare_general_update_mode_in::<S>(
        grid,
        &uniform_layout(nrows, ncols, grid.q()),
        upd,
        mode,
        timer,
    )
}

/// [`prepare_general_update_mode`] under an explicit [`Layout`] — the form
/// the engine uses so general-update operands route under the session's
/// (possibly rebalanced) cuts. Collective.
pub fn prepare_general_update_mode_in<S: Semiring>(
    grid: &Grid,
    layout: &Arc<Layout>,
    upd: GeneralUpdates<S::Elem>,
    mode: TransposeMode,
    timer: &mut PhaseTimer,
) -> PreparedGeneral<S::Elem> {
    let combined_t = matches!(mode, TransposeMode::Virtual).then(|| {
        let mut v: Vec<Triple<S::Elem>> = upd
            .deletes
            .iter()
            .map(|&(r, c)| Triple::new(c, r, S::zero()))
            .collect();
        v.extend(upd.sets.iter().map(|t| Triple::new(t.col, t.row, t.val)));
        v
    });
    let del_tuples: Vec<Triple<S::Elem>> = upd
        .deletes
        .iter()
        .map(|&(r, c)| Triple::new(r, c, S::zero()))
        .collect();
    let set_mat = build_update_matrix_in::<S>(grid, layout, upd.sets, Dedup::LastWins, timer);
    let del_mat = build_update_matrix_in::<S>(grid, layout, del_tuples, Dedup::LastWins, timer);
    // A* = sets ∪ deletes structurally (deletions "add a structural non-zero
    // to A* to indicate that the corresponding entries have changed").
    let star_block = Dcsr::merge_with(set_mat.block(), del_mat.block(), |a, _| a);
    let star = DistDcsr::from_block_in(grid, layout, star_block);
    let star_t = combined_t.map(|tuples| {
        build_update_matrix_in::<S>(
            grid,
            &Arc::new(layout.transposed()),
            tuples,
            Dedup::LastWins,
            timer,
        )
    });
    PreparedGeneral {
        set_mat,
        del_mat,
        star,
        star_t,
    }
}

/// The `√p` masked-recompute rounds shared by both general-update paths:
/// broadcast `A^R` over process rows and the `C*` pattern over process
/// columns, recompute `Z = A^R · right` masked at `C*` (with updated Bloom
/// bits), and merge-reduce the partials onto the owners. Pipelined: round
/// `k + 1`'s two broadcasts are in flight while round `k` runs the masked
/// multiply and its reduction (both payloads are round-invariant, so the
/// lookahead costs no extra assembly). Returns `(Z_{i,j}, local_flops)`.
/// Collective over the grid.
fn masked_recompute_rounds<S: Semiring>(
    grid: &Grid,
    ar_t: &Arc<Dcsr<S::Elem>>,
    cstar_structure: &Arc<Dcsr<()>>,
    right: &dspgemm_sparse::DhbMatrix<S::Elem>,
    k_offset: Index,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<(S::Elem, u64)>, u64) {
    let q = grid.q();
    let (i, j) = grid.coords();
    let mut flops = 0u64;
    let mut z_mine: Option<Dcsr<(S::Elem, u64)>> = None;
    run_rounds(
        &mut (timer, &mut flops, &mut z_mine),
        q,
        Schedule::Overlap,
        |_ctx, k| {
            let ra = grid
                .row_comm()
                .ibcast_shared(k, if j == k { Some(Arc::clone(ar_t)) } else { None });
            let rc = grid.col_comm().ibcast_shared(
                k,
                if i == k {
                    Some(Arc::clone(cstar_structure))
                } else {
                    None
                },
            );
            (ra, rc)
        },
        |ctx, _k, (ra, rc)| {
            let ar_bcast = await_into_phase(ra, ctx.0, phase::BCAST);
            let cstar_bcast = await_into_phase(rc, ctx.0, phase::BCAST);
            (ar_bcast, cstar_bcast)
        },
        |ctx, k, (ar_bcast, cstar_bcast)| {
            let (timer, flops, z_mine) = ctx;
            // Local hash table over the broadcast C* block (Section VI-B:
            // built redundantly per rank; cheaper than broadcasting the
            // table).
            let z_part = timer.time(phase::LOCAL_MULT, || {
                let mask = MaskSet::from_pattern(&cstar_bcast);
                masked_spgemm_bloom_with::<S, _, _>(
                    &*ar_bcast,
                    right,
                    &mask,
                    k_offset,
                    exec.fused(),
                )
            });
            timer.add_thread_flops(&z_part.thread_flops);
            **flops += z_part.flops;
            let z_red = timer.time(phase::REDUCE_SCATTER, || {
                grid.col_comm().reduce(k, z_part.result, |x, y| {
                    Dcsr::merge_with(&x, &y, |(v1, b1), (v2, b2)| (S::add(v1, v2), b1 | b2))
                })
            });
            if let Some(z) = z_red {
                debug_assert_eq!(i, k);
                **z_mine = Some(z);
            }
        },
    );
    (z_mine.expect("round k=i must deliver Z_{i,j}"), flops)
}

/// Applies one batch of general updates to each operand of `C = A · B`,
/// updating `A`, `B`, `C` and the filter matrix `F` in place via
/// Algorithm 2. Returns the local flop count. Collective over the grid.
///
/// `f` must have been maintained by every prior product/update step
/// ([`crate::summa::summa_bloom`], the tracked algebraic path, or this
/// function) — the engine enforces that.
#[allow(clippy::too_many_arguments)]
pub fn apply_general_updates<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_upd: GeneralUpdates<S::Elem>,
    b_upd: GeneralUpdates<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_general_updates_exec::<S>(grid, a, b, c, f, a_upd, b_upd, &Exec::new(threads), timer)
}

/// [`apply_general_updates`] under an explicit [`Exec`] — the engine's
/// entry point, so the pattern pass and masked recomputation lease from the
/// session pools. Defaults to [`TransposeMode::Virtual`] (Section V-C).
#[allow(clippy::too_many_arguments)]
pub fn apply_general_updates_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_upd: GeneralUpdates<S::Elem>,
    b_upd: GeneralUpdates<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    apply_general_updates_mode_exec::<S>(
        grid,
        a,
        b,
        c,
        f,
        a_upd,
        b_upd,
        TransposeMode::default(),
        exec,
        timer,
    )
}

/// [`apply_general_updates_exec`] under an explicit [`TransposeMode`] —
/// the `repro commavoid` ablation switch for Algorithm 2's
/// `COMPUTE_PATTERN` phase (the `A^R` exchange of the masked recompute is
/// physical in both modes: `A^R` is data-dependent and cannot be prebuilt
/// at redistribution time).
#[allow(clippy::too_many_arguments)]
pub fn apply_general_updates_mode_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    b: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    a_upd: GeneralUpdates<S::Elem>,
    b_upd: GeneralUpdates<S::Elem>,
    mode: TransposeMode,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> u64 {
    // --- Update matrices (redistribution = "scatter"). ---
    let (a_ops, b_ops) = timer.time(phase::SCATTER, || {
        let mut inner_t = PhaseTimer::new();
        let a_layout = Arc::clone(a.info().layout());
        let b_layout = Arc::clone(b.info().layout());
        let a_ops = prepare_general_update_mode_in::<S>(grid, &a_layout, a_upd, mode, &mut inner_t);
        let b_ops = prepare_general_update_mode_in::<S>(grid, &b_layout, b_upd, mode, &mut inner_t);
        (a_ops, b_ops)
    });

    // --- B ← B' (Eq. 1 needs B' during pattern computation). ---
    timer.time(phase::LOCAL_UPDATE, || {
        apply_merge_exec::<S>(b, &b_ops.set_mat, exec);
        apply_mask_exec::<S>(b, &b_ops.del_mat, exec);
    });

    // --- COMPUTE_PATTERN: C* pattern + F* bits at each owner. ---
    let (cstar, mut flops) =
        compute_cstar_exec::<S, PatternKernel>(grid, a, b, a_ops.view(), b_ops.view(), exec, timer);

    // --- A ← A' (the masked recomputation reads the *new* A). ---
    timer.time(phase::LOCAL_UPDATE, || {
        apply_merge_exec::<S>(a, &a_ops.set_mat, exec);
        apply_mask_exec::<S>(a, &a_ops.del_mat, exec);
    });

    // --- E = (F ⊕ F*) masked at C*; R = row-wise OR, allreduced over the
    // process row. ---
    let local_rows = a.info().local_rows();
    let filter: Arc<Vec<u64>> = timer.time(phase::REDUCE_SCATTER, || {
        let mut e = Dcsr::empty(cstar.nrows(), cstar.ncols());
        cstar.scan_rows(|r, cols, vals| {
            let mut e_cols: Vec<Index> = Vec::with_capacity(cols.len());
            let mut e_vals: Vec<u64> = Vec::with_capacity(cols.len());
            for (&cc, &fstar_bits) in cols.iter().zip(vals) {
                let f_bits = f.block().get(r, cc).unwrap_or(0);
                e_cols.push(cc);
                e_vals.push(f_bits | fstar_bits);
            }
            e.push_row(r, &e_cols, &e_vals);
        });
        let local_r = row_or_reduce(&e, local_rows);
        // Vector allreduce = reduce + zero-copy broadcast-back (the filter
        // segment is a real payload, unlike the scalar control allreduces).
        let reduced = grid.row_comm().reduce(0, local_r, |mut x, y| {
            dspgemm_sparse::bloom::or_assign(&mut x, &y);
            x
        });
        grid.row_comm().bcast_shared(0, reduced.map(Arc::new))
    });

    // --- A^R: filtered extraction of A' (rows with r_i ≠ 0, Bloom-selected
    // columns). ---
    let a_r: Arc<Dcsr<S::Elem>> = timer.time(phase::LOCAL_MULT, || {
        Arc::new(extract_filtered(
            a.block(),
            &filter,
            a.info().col_range.start,
        ))
    });

    // --- Transpose exchange of A^R (enables parallel row broadcasts). ---
    const TAG_AR: u64 = 103;
    let peer = grid.transpose_rank();
    let ar_t: Arc<Dcsr<S::Elem>> = timer.time(phase::SEND_RECV, || {
        if peer == grid.world().rank() {
            a_r
        } else {
            grid.world().sendrecv_shared(peer, a_r, peer, TAG_AR)
        }
    });

    // --- √p rounds: bcast A^R over rows, C* over columns, masked multiply,
    // merge-reduce Z/H onto owners (pipelined). ---
    let cstar_structure: Arc<Dcsr<()>> = Arc::new(cstar.map(|_| ()));
    let (z, z_flops) = masked_recompute_rounds::<S>(
        grid,
        &ar_t,
        &cstar_structure,
        b.block(),
        b.info().row_range.start,
        exec,
        timer,
    );
    flops += z_flops;

    // --- Merge Z into C and H into F, masked at C*: recomputed entries are
    // replaced, vanished entries deleted. ---
    timer.time(phase::LOCAL_UPDATE, || {
        if cstar.nnz() == 0 {
            return; // keep the blocks' snapshot images valid (COW publish)
        }
        let mut z_lookup: FxHashMap<u64, (S::Elem, u64)> = FxHashMap::default();
        z_lookup.reserve(z.nnz());
        z.scan_rows(|r, cols, vals| {
            for (&cc, &v) in cols.iter().zip(vals) {
                z_lookup.insert(((r as u64) << 32) | cc as u64, v);
            }
        });
        let c_block = c.block_mut();
        let f_block = f.block_mut();
        cstar.scan_rows(|r, cols, _| {
            for &cc in cols {
                match z_lookup.get(&(((r as u64) << 32) | cc as u64)) {
                    Some(&(v, bits)) => {
                        c_block.set(r, cc, v);
                        f_block.set(r, cc, bits);
                    }
                    None => {
                        c_block.remove(r, cc);
                        f_block.remove(r, cc);
                    }
                }
            }
        });
    });
    flops
}

/// Shared-operand general update from **pre-built** update matrices:
/// applies one batch of sets/deletes to the single dynamic matrix of a
/// maintained square product `C = A · A` and repairs `C` and `F` via
/// Algorithm 2. Returns this rank's `C*` pattern block (the product
/// positions whose values were recomputed or deleted — the change feed for
/// maintained views) plus the local flop count. Collective.
///
/// `COMPUTE_PATTERN` runs through
/// [`compute_cstar_shared`](crate::dyn_algebraic::compute_cstar_shared)'s
/// split round
/// structure (`Y` rounds against the old `A`, MERGE/MASK application, `X`
/// rounds against the new `A'`); the subsequent filter reduction, `A^R`
/// extraction and masked recomputation read only the post-update matrix, so
/// they are unchanged from [`apply_general_updates`] with `B = A'`.
pub fn apply_shared_general_prebuilt<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    prep: &PreparedGeneral<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (Dcsr<u64>, u64) {
    apply_shared_general_prebuilt_exec::<S>(grid, a, c, f, prep, &Exec::new(threads), timer)
}

/// [`apply_shared_general_prebuilt`] under an explicit [`Exec`].
pub fn apply_shared_general_prebuilt_exec<S: Semiring>(
    grid: &Grid,
    a: &mut DistMat<S::Elem>,
    c: &mut DistMat<S::Elem>,
    f: &mut DistMat<u64>,
    prep: &PreparedGeneral<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (Dcsr<u64>, u64) {
    // --- COMPUTE_PATTERN around the in-place update A → A'. ---
    let (cstar, mut flops) = compute_cstar_shared_exec::<S, PatternKernel>(
        grid,
        a,
        prep.view(),
        |m| {
            apply_merge_exec::<S>(m, &prep.set_mat, exec);
            apply_mask_exec::<S>(m, &prep.del_mat, exec);
        },
        exec,
        timer,
    );

    // --- E = (F ⊕ F*) masked at C*; R = row-wise OR over the process row. ---
    let local_rows = a.info().local_rows();
    let filter: Arc<Vec<u64>> = timer.time(phase::REDUCE_SCATTER, || {
        let mut e = Dcsr::empty(cstar.nrows(), cstar.ncols());
        cstar.scan_rows(|r, cols, vals| {
            let mut e_cols: Vec<Index> = Vec::with_capacity(cols.len());
            let mut e_vals: Vec<u64> = Vec::with_capacity(cols.len());
            for (&cc, &fstar_bits) in cols.iter().zip(vals) {
                let f_bits = f.block().get(r, cc).unwrap_or(0);
                e_cols.push(cc);
                e_vals.push(f_bits | fstar_bits);
            }
            e.push_row(r, &e_cols, &e_vals);
        });
        let local_r = row_or_reduce(&e, local_rows);
        let reduced = grid.row_comm().reduce(0, local_r, |mut x, y| {
            dspgemm_sparse::bloom::or_assign(&mut x, &y);
            x
        });
        grid.row_comm().bcast_shared(0, reduced.map(Arc::new))
    });

    // --- A^R: filtered extraction of the already-updated A'. ---
    let a_r: Arc<Dcsr<S::Elem>> = timer.time(phase::LOCAL_MULT, || {
        Arc::new(extract_filtered(
            a.block(),
            &filter,
            a.info().col_range.start,
        ))
    });

    // --- Transpose exchange of A^R. ---
    const TAG_AR_SHARED: u64 = 106;
    let peer = grid.transpose_rank();
    let ar_t: Arc<Dcsr<S::Elem>> = timer.time(phase::SEND_RECV, || {
        if peer == grid.world().rank() {
            a_r
        } else {
            grid.world().sendrecv_shared(peer, a_r, peer, TAG_AR_SHARED)
        }
    });

    // --- √p rounds: bcast A^R over rows, C* over columns, masked multiply
    // against A' itself, merge-reduce Z/H onto owners (pipelined). ---
    let cstar_structure: Arc<Dcsr<()>> = Arc::new(cstar.map(|_| ()));
    let (z, z_flops) = masked_recompute_rounds::<S>(
        grid,
        &ar_t,
        &cstar_structure,
        a.block(),
        a.info().row_range.start,
        exec,
        timer,
    );
    flops += z_flops;

    // --- Merge Z into C and H into F, masked at C*. ---
    timer.time(phase::LOCAL_UPDATE, || {
        if cstar.nnz() == 0 {
            return; // keep the blocks' snapshot images valid (COW publish)
        }
        let mut z_lookup: FxHashMap<u64, (S::Elem, u64)> = FxHashMap::default();
        z_lookup.reserve(z.nnz());
        z.scan_rows(|r, cols, vals| {
            for (&cc, &v) in cols.iter().zip(vals) {
                z_lookup.insert(((r as u64) << 32) | cc as u64, v);
            }
        });
        let c_block = c.block_mut();
        let f_block = f.block_mut();
        cstar.scan_rows(|r, cols, _| {
            for &cc in cols {
                match z_lookup.get(&(((r as u64) << 32) | cc as u64)) {
                    Some(&(v, bits)) => {
                        c_block.set(r, cc, v);
                        f_block.set(r, cc, bits);
                    }
                    None => {
                        c_block.remove(r, cc);
                        f_block.remove(r, cc);
                    }
                }
            }
        });
    });
    (cstar, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::{summa, summa_bloom};
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::{MinPlus, U64Plus};
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples_f(seed: u64, n: Index, count: usize) -> Vec<Triple<f64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    (rng.gen_range(9) + 1) as f64,
                )
            })
            .collect()
    }

    fn random_triples_u(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(9) + 1,
                )
            })
            .collect()
    }

    /// Draw general updates touching existing entries (value increases — the
    /// min-plus-incompatible case) plus deletions plus fresh inserts.
    fn draw_general_f(
        seed: u64,
        n: Index,
        existing: &[Triple<f64>],
        sets: usize,
        dels: usize,
    ) -> GeneralUpdates<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut upd = GeneralUpdates::new();
        for s in 0..sets {
            if s % 2 == 0 && !existing.is_empty() {
                // Increase an existing value — impossible under (min,+) add.
                let t = existing[rng.gen_index(existing.len())];
                upd.sets
                    .push(Triple::new(t.row, t.col, t.val + 5.0 + rng.gen_f64()));
            } else {
                upd.sets.push(Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    (rng.gen_range(9) + 1) as f64,
                ));
            }
        }
        for _ in 0..dels {
            if existing.is_empty() {
                break;
            }
            let t = existing[rng.gen_index(existing.len())];
            upd.deletes.push((t.row, t.col));
        }
        upd
    }

    fn check_general_min_plus(p: usize, n: Index, rounds: usize) {
        let out = run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples_f(s, n, 3 * n as usize)
                } else {
                    vec![]
                }
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
            let (mut c, mut f, _) = summa_bloom::<MinPlus>(&grid, &a, &b, 1, &mut timer);
            for round in 0..rounds as u64 {
                // Rank 0 draws updates from the *current* global state so
                // value-increases and deletions hit real entries.
                let a_cur = a.gather_to_root(comm);
                let b_cur = b.gather_to_root(comm);
                let (a_upd, b_upd) = if comm.rank() == 0 {
                    (
                        draw_general_f(100 + round, n, a_cur.as_ref().unwrap(), 8, 4),
                        draw_general_f(200 + round, n, b_cur.as_ref().unwrap(), 8, 4),
                    )
                } else {
                    (GeneralUpdates::new(), GeneralUpdates::new())
                };
                apply_general_updates::<MinPlus>(
                    &grid, &mut a, &mut b, &mut c, &mut f, a_upd, b_upd, 1, &mut timer,
                );
            }
            // Reference: static recomputation of A'·B' from scratch.
            let (c_static, _) = summa::<MinPlus>(&grid, &a, &b, 1, &mut timer);
            (c.gather_to_root(comm), c_static.gather_to_root(comm))
        });
        let (c_dyn, c_static) = &out.results[0];
        let c_dyn = c_dyn.as_ref().unwrap();
        let c_static = c_static.as_ref().unwrap();
        let dd = Dense::from_triples::<MinPlus>(n, n, c_dyn);
        let ds = Dense::from_triples::<MinPlus>(n, n, c_static);
        assert_eq!(dd.diff(&ds), vec![], "p={p}: general dynamic != static");
    }

    #[test]
    fn general_min_plus_p1() {
        check_general_min_plus(1, 20, 3);
    }

    #[test]
    fn general_min_plus_p4() {
        check_general_min_plus(4, 20, 3);
    }

    #[test]
    fn general_min_plus_p9() {
        check_general_min_plus(9, 24, 2);
    }

    #[test]
    fn general_handles_pure_deletions_u64() {
        let n: Index = 16;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples_u(5, n, 60)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, mut f, _) = summa_bloom::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            // Delete some of A's entries (drawn from gathered state).
            let a_cur = a.gather_to_root(comm);
            let a_upd = if comm.rank() == 0 {
                let cur = a_cur.unwrap();
                let mut upd = GeneralUpdates::new();
                for t in cur.iter().step_by(3) {
                    upd.deletes.push((t.row, t.col));
                }
                upd
            } else {
                GeneralUpdates::new()
            };
            apply_general_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                &mut f,
                a_upd,
                GeneralUpdates::new(),
                1,
                &mut timer,
            );
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            (c.gather_to_root(comm), c_static.gather_to_root(comm))
        });
        let (c_dyn, c_static) = &out.results[0];
        assert_eq!(c_dyn, c_static);
    }

    /// Shared-operand general updates (deletions + min-plus-incompatible
    /// sets) on C = A·A must equal static recomputation, on every grid.
    #[test]
    fn shared_general_matches_static_recompute() {
        let n: Index = 18;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let t = if comm.rank() == 0 {
                    random_triples_f(3, n, 3 * n as usize)
                } else {
                    vec![]
                };
                let mut a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
                let (mut c, mut f, _) = summa_bloom::<MinPlus>(&grid, &a, &a, 1, &mut timer);
                for round in 0..2u64 {
                    let a_cur = a.gather_to_root(comm);
                    let upd = if comm.rank() == 0 {
                        draw_general_f(90 + round, n, a_cur.as_ref().unwrap(), 6, 4)
                    } else {
                        GeneralUpdates::new()
                    };
                    let prep = prepare_general_update::<MinPlus>(&grid, n, n, upd, &mut timer);
                    let (cstar, _) = apply_shared_general_prebuilt::<MinPlus>(
                        &grid, &mut a, &mut c, &mut f, &prep, 1, &mut timer,
                    );
                    // The change feed covers every masked position by design.
                    assert!(cstar.nnz() <= c.info().local_rows() as usize * n as usize);
                }
                let (c_static, _) = summa::<MinPlus>(&grid, &a, &a, 1, &mut timer);
                (c.gather_to_root(comm), c_static.gather_to_root(comm))
            });
            let (c_dyn, c_static) = &out.results[0];
            let dd = Dense::from_triples::<MinPlus>(n, n, c_dyn.as_ref().unwrap());
            let ds = Dense::from_triples::<MinPlus>(n, n, c_static.as_ref().unwrap());
            assert_eq!(dd.diff(&ds), vec![], "p={p}: shared general != static");
        }
    }

    #[test]
    fn empty_general_update_is_noop() {
        let n: Index = 12;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples_u(8, n, 40)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, mut f, _) = summa_bloom::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            let before = c.gather_to_root(comm);
            apply_general_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                &mut f,
                GeneralUpdates::new(),
                GeneralUpdates::new(),
                1,
                &mut timer,
            );
            before == c.gather_to_root(comm)
        });
        assert!(out.results.iter().all(|&x| x));
    }

    #[test]
    fn filter_matrix_stays_consistent_with_c() {
        let n: Index = 16;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples_u(9, n, 50)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, mut f, _) = summa_bloom::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            for round in 0..2u64 {
                let a_cur = a.gather_to_root(comm);
                let a_upd = if comm.rank() == 0 {
                    let cur = a_cur.unwrap();
                    let mut rng = SplitMix64::new(70 + round);
                    let mut upd = GeneralUpdates::new();
                    for _ in 0..5 {
                        if !cur.is_empty() {
                            let pick = cur[rng.gen_index(cur.len())];
                            upd.deletes.push((pick.row, pick.col));
                        }
                        upd.sets.push(Triple::new(
                            rng.gen_range(n as u64) as Index,
                            rng.gen_range(n as u64) as Index,
                            rng.gen_range(9) + 1,
                        ));
                    }
                    upd
                } else {
                    GeneralUpdates::new()
                };
                apply_general_updates::<U64Plus>(
                    &grid,
                    &mut a,
                    &mut b,
                    &mut c,
                    &mut f,
                    a_upd,
                    GeneralUpdates::new(),
                    1,
                    &mut timer,
                );
            }
            // Pattern of F == pattern of C after every step.
            let ct: Vec<(Index, Index)> = c
                .to_global_triples()
                .iter()
                .map(|t| (t.row, t.col))
                .collect();
            let ft: Vec<(Index, Index)> = f
                .to_global_triples()
                .iter()
                .map(|t| (t.row, t.col))
                .collect();
            ct == ft
        });
        assert!(out.results.iter().all(|&x| x));
    }
}
