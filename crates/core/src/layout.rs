//! Explicit 2D block layouts: the cut points of the distribution.
//!
//! The paper's distribution is the implicit uniform split of
//! [`crate::grid::block_range`]: block `b` of `0..n` is fixed by `n` and `q`
//! alone. That is oblivious to skew — a clustered update stream piles nnz and
//! flops onto the few ranks whose blocks cover the hot vertex range. This
//! module makes the cut points *data*: a [`Layout`] holds the `q + 1`
//! monotone row and column cuts, every matrix carries an `Arc<Layout>` in its
//! [`crate::distmat::BlockInfo`], and redistribution routes by the layout's
//! owner lookup instead of the closed-form [`crate::grid::owner_block`]. The
//! engine's [`crate::rebalance::Rebalancer`] moves the cuts at run time
//! (stripe migration) when the per-rank load gauges report imbalance above a
//! threshold — the inter-rank analogue of the intra-rank flop balancing in
//! [`dspgemm_util::par::split_ranges_by_weight`], whose prefix-sum cut rule
//! [`rebalance_cuts`] mirrors.
//!
//! Uniform layouts remain the common case: every constructor that does not
//! take a layout builds [`Layout::uniform`], which is bit-for-bit the
//! [`crate::grid::block_range`] decomposition, so all static paths are
//! unchanged.

use crate::grid::block_range;
use dspgemm_sparse::Index;
use std::ops::Range;
use std::sync::Arc;

/// The cut points of a 2D block distribution over a `q × q` grid.
///
/// `row_cuts` and `col_cuts` each hold `q + 1` monotone non-decreasing
/// values starting at `0` and ending at the global dimension; grid row `i`
/// owns global rows `row_cuts[i]..row_cuts[i + 1]` (and columns likewise by
/// grid column). Zero-width stripes are legal — a rank may own an empty
/// block, exactly as the uniform split produces when `n < q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    row_cuts: Vec<Index>,
    col_cuts: Vec<Index>,
}

impl Layout {
    /// The uniform layout: bit-identical to the
    /// [`crate::grid::block_range`] decomposition of both dimensions.
    pub fn uniform(nrows: Index, ncols: Index, q: usize) -> Self {
        Self {
            row_cuts: uniform_cuts(nrows, q),
            col_cuts: uniform_cuts(ncols, q),
        }
    }

    /// Builds a layout from explicit cut vectors.
    ///
    /// # Panics
    /// Panics unless both vectors have the same length `q + 1 >= 2`, start
    /// at `0`, and are monotone non-decreasing.
    pub fn from_cuts(row_cuts: Vec<Index>, col_cuts: Vec<Index>) -> Self {
        validate_cuts(&row_cuts, "row");
        validate_cuts(&col_cuts, "col");
        assert_eq!(
            row_cuts.len(),
            col_cuts.len(),
            "row/col cut vectors must target the same grid side"
        );
        Self { row_cuts, col_cuts }
    }

    /// A square layout: the same cuts on both dimensions (the shape every
    /// dynamic `C = A·B` session with square operands migrates through, so
    /// that SUMMA's inner dimension stays conformal with both operands).
    pub fn square(cuts: Vec<Index>) -> Self {
        Self::from_cuts(cuts.clone(), cuts)
    }

    /// Grid side length this layout targets.
    #[inline]
    pub fn q(&self) -> usize {
        self.row_cuts.len() - 1
    }

    /// Global row count.
    #[inline]
    pub fn nrows(&self) -> Index {
        *self.row_cuts.last().expect("validated: q + 1 cuts")
    }

    /// Global column count.
    #[inline]
    pub fn ncols(&self) -> Index {
        *self.col_cuts.last().expect("validated: q + 1 cuts")
    }

    /// The row cut points (length `q + 1`).
    #[inline]
    pub fn row_cuts(&self) -> &[Index] {
        &self.row_cuts
    }

    /// The column cut points (length `q + 1`).
    #[inline]
    pub fn col_cuts(&self) -> &[Index] {
        &self.col_cuts
    }

    /// Global rows owned by grid row `b`.
    #[inline]
    pub fn row_range(&self, b: usize) -> Range<Index> {
        self.row_cuts[b]..self.row_cuts[b + 1]
    }

    /// Global columns owned by grid column `b`.
    #[inline]
    pub fn col_range(&self, b: usize) -> Range<Index> {
        self.col_cuts[b]..self.col_cuts[b + 1]
    }

    /// First global row of grid row `b` — the row offset of round `b`'s
    /// panel in SUMMA-style loops.
    #[inline]
    pub fn row_start(&self, b: usize) -> Index {
        self.row_cuts[b]
    }

    /// First global column of grid column `b`.
    #[inline]
    pub fn col_start(&self, b: usize) -> Index {
        self.col_cuts[b]
    }

    /// The grid row owning global row `x`, plus that stripe's start.
    /// Zero-width stripes are skipped — the returned stripe always
    /// contains `x`.
    #[inline]
    pub fn row_owner(&self, x: Index) -> (usize, Index) {
        owner_of(&self.row_cuts, x)
    }

    /// The grid column owning global column `x`, plus that stripe's start.
    #[inline]
    pub fn col_owner(&self, x: Index) -> (usize, Index) {
        owner_of(&self.col_cuts, x)
    }

    /// The transposed layout (row and column cuts swapped) — the layout of
    /// `Aᵀ` given the layout of `A`.
    pub fn transposed(&self) -> Self {
        Self {
            row_cuts: self.col_cuts.clone(),
            col_cuts: self.row_cuts.clone(),
        }
    }

    /// Whether `self · rhs` is conformal at the block level: the inner
    /// dimension must be cut identically on both sides, or SUMMA's round
    /// panels would not line up.
    pub fn conformal_inner(&self, rhs: &Layout) -> bool {
        self.col_cuts == rhs.row_cuts
    }

    /// The layout of the product `self · rhs` (self's row cuts × rhs's
    /// column cuts).
    ///
    /// # Panics
    /// Panics unless the inner dimension is conformally cut.
    pub fn product(&self, rhs: &Layout) -> Self {
        assert!(
            self.conformal_inner(rhs),
            "product of non-conformal layouts: inner cuts {:?} vs {:?}",
            self.col_cuts,
            rhs.row_cuts
        );
        Self {
            row_cuts: self.row_cuts.clone(),
            col_cuts: rhs.col_cuts.clone(),
        }
    }

    /// Whether this layout is the uniform [`crate::grid::block_range`]
    /// decomposition.
    pub fn is_uniform(&self) -> bool {
        self.row_cuts == uniform_cuts(self.nrows(), self.q())
            && self.col_cuts == uniform_cuts(self.ncols(), self.q())
    }
}

/// A shared uniform layout — the default carried by every matrix built
/// without an explicit layout.
pub fn uniform_layout(nrows: Index, ncols: Index, q: usize) -> Arc<Layout> {
    Arc::new(Layout::uniform(nrows, ncols, q))
}

/// The uniform cut vector over one dimension: bit-identical to the
/// [`crate::grid::block_range`] decomposition of `0..n` into `q` stripes.
pub fn uniform_cuts(n: Index, q: usize) -> Vec<Index> {
    let mut cuts = Vec::with_capacity(q + 1);
    for b in 0..q {
        cuts.push(block_range(n, q, b).start);
    }
    cuts.push(n);
    cuts
}

fn validate_cuts(cuts: &[Index], which: &str) {
    assert!(cuts.len() >= 2, "{which} cuts need at least 2 entries");
    assert_eq!(cuts[0], 0, "{which} cuts must start at 0");
    assert!(
        cuts.windows(2).all(|w| w[0] <= w[1]),
        "{which} cuts must be monotone non-decreasing: {cuts:?}"
    );
}

/// The stripe whose range contains `x`: the *last* stripe starting at or
/// before `x` skips any zero-width stripes sharing that start. Returns the
/// stripe index and its start cut.
#[inline]
pub fn owner_of(cuts: &[Index], x: Index) -> (usize, Index) {
    debug_assert!(x < *cuts.last().expect("validated: q + 1 cuts"));
    let b = cuts.partition_point(|&c| c <= x) - 1;
    (b, cuts[b])
}

/// New cut points balancing `loads` over the stripes of `old_cuts`: the
/// inter-rank twin of [`dspgemm_util::par::split_ranges_by_weight`].
///
/// `loads[b]` is the measured load of old stripe `old_cuts[b]..old_cuts[b+1]`
/// (per-rank nnz summed over the grid row/column). The solver places cut `k`
/// at the index whose load prefix reaches `k/q` of the total, interpolating
/// inside stripes under a piecewise-uniform density assumption — the finest
/// statement the per-stripe gauges support. Monotone by construction,
/// exactly `q + 1` cuts, endpoints pinned at `0` and `n`; all-zero loads
/// fall back to the uniform split (same rule as `split_ranges_by_weight`).
pub fn rebalance_cuts(old_cuts: &[Index], loads: &[u64]) -> Vec<Index> {
    let q = loads.len();
    assert_eq!(old_cuts.len(), q + 1, "need one load per stripe");
    let n = *old_cuts.last().expect("q + 1 cuts");
    let total: u128 = loads.iter().map(|&w| w as u128).sum();
    if total == 0 || q == 1 {
        return uniform_cuts(n, q);
    }
    let mut cuts: Vec<Index> = Vec::with_capacity(q + 1);
    cuts.push(0);
    // `before` is the load of stripes fully left of `stripe`; the targets
    // are non-decreasing, so one forward sweep places every cut.
    let mut stripe = 0usize;
    let mut before: u128 = 0;
    for k in 1..q {
        let target = total * k as u128 / q as u128;
        while stripe + 1 < q && before + loads[stripe] as u128 <= target {
            before += loads[stripe] as u128;
            stripe += 1;
        }
        let (lo, hi) = (old_cuts[stripe] as u128, old_cuts[stripe + 1] as u128);
        let w = loads[stripe] as u128;
        let need = target.saturating_sub(before).min(w);
        let pos = match ((hi - lo) * need).checked_div(w) {
            Some(off) => lo + off,
            None => lo,
        } as Index;
        cuts.push(pos.max(*cuts.last().expect("non-empty")).min(n));
    }
    cuts.push(n);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{block_range, owner_block};

    #[test]
    fn uniform_matches_block_range() {
        for n in [0u32, 1, 7, 9, 64, 1023] {
            for q in [1usize, 2, 3, 7] {
                let l = Layout::uniform(n, n, q);
                assert!(l.is_uniform());
                for b in 0..q {
                    assert_eq!(l.row_range(b), block_range(n, q, b));
                    assert_eq!(l.col_range(b), block_range(n, q, b));
                }
                for x in 0..n {
                    assert_eq!(l.row_owner(x), owner_block(n, q, x));
                    assert_eq!(l.col_owner(x), owner_block(n, q, x));
                }
            }
        }
    }

    #[test]
    fn owner_skips_zero_width_stripes() {
        let l = Layout::square(vec![0, 5, 5, 10]);
        assert!(!l.is_uniform());
        assert_eq!(l.row_range(1), 5..5);
        for x in 0..5 {
            assert_eq!(l.row_owner(x), (0, 0));
        }
        for x in 5..10 {
            assert_eq!(l.row_owner(x), (2, 5));
        }
        // Leading zero-width stripe: index 0 belongs to the non-empty one.
        let l = Layout::square(vec![0, 0, 5, 10]);
        assert_eq!(l.row_owner(0), (1, 0));
        assert_eq!(l.row_owner(7), (2, 5));
    }

    #[test]
    fn transpose_and_product() {
        let l = Layout::from_cuts(vec![0, 2, 10], vec![0, 7, 8]);
        let t = l.transposed();
        assert_eq!(t.row_cuts(), &[0, 7, 8]);
        assert_eq!(t.col_cuts(), &[0, 2, 10]);
        assert!(l.conformal_inner(&t));
        let p = l.product(&t);
        assert_eq!(p.row_cuts(), &[0, 2, 10]);
        assert_eq!(p.col_cuts(), &[0, 2, 10]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn decreasing_cuts_rejected() {
        let _ = Layout::square(vec![0, 6, 5, 10]);
    }

    #[test]
    fn rebalance_cuts_properties() {
        // Property sweep: monotone, exactly q + 1 cuts, pinned endpoints.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for q in [1usize, 2, 3, 4, 9] {
            for n in [0u32, 1, 3, 9, 100, 1000] {
                for _case in 0..20 {
                    let old = uniform_cuts(n, q);
                    let loads: Vec<u64> = (0..q).map(|_| next() % 1000).collect();
                    let new = rebalance_cuts(&old, &loads);
                    assert_eq!(new.len(), q + 1);
                    assert_eq!(new[0], 0);
                    assert_eq!(*new.last().unwrap(), n);
                    assert!(new.windows(2).all(|w| w[0] <= w[1]), "{new:?}");
                    // Valid input for Layout.
                    let _ = Layout::square(new);
                }
            }
        }
    }

    #[test]
    fn rebalance_cuts_zero_weight_fallback() {
        let old = vec![0u32, 1, 2, 9];
        assert_eq!(rebalance_cuts(&old, &[0, 0, 0]), uniform_cuts(9, 3));
    }

    #[test]
    fn rebalance_cuts_splits_hot_stripe() {
        // All load on stripe 0: the new cuts subdivide it.
        let old = vec![0u32, 3, 6, 9];
        assert_eq!(rebalance_cuts(&old, &[90, 0, 0]), vec![0, 1, 2, 9]);
        // All load on the last stripe.
        assert_eq!(rebalance_cuts(&old, &[0, 0, 90]), vec![0, 7, 8, 9]);
        // Zero-weight middle stripe absorbed.
        assert_eq!(rebalance_cuts(&old, &[45, 0, 45]), vec![0, 2, 7, 9]);
        // Balanced load keeps the cuts in place.
        assert_eq!(rebalance_cuts(&old, &[30, 30, 30]), vec![0, 3, 6, 9]);
    }

    #[test]
    fn rebalance_cuts_balances_load() {
        // The rebalanced stripes carry near-equal load under the density
        // model: per-index density is loads[b] / width(b).
        let old = vec![0u32, 25, 50, 75, 100];
        let loads = [1000u64, 10, 10, 20];
        let new = rebalance_cuts(&old, &loads);
        let density = |x: u32| -> f64 {
            let b = old.partition_point(|&c| c <= x) - 1;
            loads[b] as f64 / (old[b + 1] - old[b]) as f64
        };
        let stripe_load = |lo: u32, hi: u32| -> f64 { (lo..hi).map(density).sum() };
        let total: f64 = stripe_load(0, 100);
        for b in 0..4 {
            let l = stripe_load(new[b], new[b + 1]);
            assert!(
                (l - total / 4.0).abs() <= total / 10.0,
                "stripe {b} ({:?}) load {l} vs target {}",
                new[b]..new[b + 1],
                total / 4.0
            );
        }
    }
}
