//! Static sparse SUMMA — the baseline SpGEMM and the producer of the initial
//! product.
//!
//! SUMMA runs `√p` rounds; in round `k` the blocks `A_{i,k}` are broadcast
//! along process rows and `B_{k,j}` along process columns, every rank
//! multiplies the received pair locally, and the partial results accumulate
//! *locally* into `C_{i,j}` (Section V: "the aggregation of partial results
//! into block (i,j) of the result is entirely local"). Its communication
//! volume is `O((nnz(A) + nnz(B))/√p)` — the full operands travel — which is
//! exactly what the dynamic algorithms avoid.
//!
//! [`summa_bloom`] additionally produces the Bloom filter matrix `F`
//! recording contributing inner indices, needed before general dynamic
//! updates can be applied (Section V-B).
//!
//! Both variants run on the pipelined round scheduler
//! ([`crate::pipeline`]): round `k + 1`'s panel broadcasts are issued
//! (nonblocking) before round `k`'s local multiply, so their communication
//! is in flight — and mostly hidden — under the compute. The `*_blocking`
//! variants keep the serialized schedule as the ablation baseline
//! (`repro overlap`); both produce bit-identical results and byte-identical
//! wire volume (enforced by `tests/overlap.rs`).

use crate::distmat::DistMat;
use crate::exec::Exec;
use crate::grid::Grid;
use crate::phase;
use crate::pipeline::{await_into_phase, run_rounds, Schedule};
use dspgemm_mpi::Request;
use dspgemm_sparse::local_mm::{spgemm_bloom_with, spgemm_with};
use dspgemm_sparse::semiring::Semiring;
use dspgemm_sparse::{Csr, Dcsr, RowScan};
use dspgemm_util::stats::PhaseTimer;
use std::sync::Arc;

/// The in-flight panel pair of one SUMMA round: `None` on the blocking
/// schedule, where the broadcasts run (and complete) inside `complete`.
type PanelFlight<V> = Option<(Request<Arc<Csr<V>>>, Request<Arc<Csr<V>>>)>;

/// Issues round `k`'s panel broadcasts — `A_{i,k}` over the process row,
/// `B_{k,j}` over the process column — nonblocking under
/// [`Schedule::Overlap`]; deferred to the completion step (legacy fully
/// blocking broadcasts, one after the other) under [`Schedule::Blocking`].
fn issue_panels<V: Send + Sync + dspgemm_util::WireSize + dspgemm_util::WireDecode + 'static>(
    grid: &Grid,
    k: usize,
    a_local: &Arc<Csr<V>>,
    b_local: &Arc<Csr<V>>,
    schedule: Schedule,
) -> PanelFlight<V> {
    if schedule == Schedule::Blocking {
        return None;
    }
    let (i, j) = grid.coords();
    let ra = grid.row_comm().ibcast_shared(
        k,
        if j == k {
            Some(Arc::clone(a_local))
        } else {
            None
        },
    );
    let rb = grid.col_comm().ibcast_shared(
        k,
        if i == k {
            Some(Arc::clone(b_local))
        } else {
            None
        },
    );
    Some((ra, rb))
}

/// Completes round `k`'s panel broadcasts: waits the in-flight requests
/// (overlap schedule, timing split into exposed/overlapped) or performs the
/// serialized legacy broadcasts (blocking schedule — `A`'s broadcast fully
/// completes before `B`'s starts, the exact pre-pipelining cost structure).
#[allow(clippy::type_complexity)]
fn complete_panels<V: Send + Sync + dspgemm_util::WireSize + dspgemm_util::WireDecode + 'static>(
    grid: &Grid,
    k: usize,
    a_local: &Arc<Csr<V>>,
    b_local: &Arc<Csr<V>>,
    flight: PanelFlight<V>,
    timer: &mut PhaseTimer,
) -> (Arc<Csr<V>>, Arc<Csr<V>>) {
    match flight {
        Some((ra, rb)) => {
            let a_blk = await_into_phase(ra, timer, phase::BCAST);
            let b_blk = await_into_phase(rb, timer, phase::BCAST);
            (a_blk, b_blk)
        }
        None => {
            let (i, j) = grid.coords();
            let a_blk = timer.time(phase::BCAST, || {
                grid.row_comm().bcast_shared(
                    k,
                    if j == k {
                        Some(Arc::clone(a_local))
                    } else {
                        None
                    },
                )
            });
            let b_blk = timer.time(phase::BCAST, || {
                grid.col_comm().bcast_shared(
                    k,
                    if i == k {
                        Some(Arc::clone(b_local))
                    } else {
                        None
                    },
                )
            });
            (a_blk, b_blk)
        }
    }
}

/// Computes `C = A · B` with sparse SUMMA on the pipelined (overlapping)
/// schedule. Collective over the grid.
///
/// Returns the result as a dynamic distributed matrix (ready for dynamic
/// updates) plus the local flop count.
pub fn summa<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, u64) {
    summa_exec::<S>(grid, a, b, &Exec::new(threads), timer)
}

/// [`summa`] under an explicit [`Exec`] (persistent workspace pools + row
/// schedule): the engine/session entry point — pooled buffers live across
/// rounds *and* across calls.
pub fn summa_exec<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, u64) {
    summa_with::<S>(grid, a, b, exec, timer, Schedule::Overlap)
}

/// [`summa`] on the serialized schedule (each round's broadcast completes
/// before its multiply) — the pre-pipelining baseline kept for the
/// `repro overlap` ablation. Bit-identical result, byte-identical wire
/// volume; only the exposed/overlapped split of communication time differs.
pub fn summa_blocking<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, u64) {
    summa_with::<S>(grid, a, b, &Exec::new(threads), timer, Schedule::Blocking)
}

fn summa_with<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
    schedule: Schedule,
) -> (DistMat<S::Elem>, u64) {
    assert!(
        a.info().layout().conformal_inner(b.info().layout()),
        "SUMMA contraction needs A's column cuts to equal B's row cuts"
    );
    let q = grid.q();
    let c_layout = Arc::new(a.info().layout().product(b.info().layout()));
    let mut c = DistMat::empty_in(grid, &c_layout);
    // One CSR snapshot per operand; the √p broadcast rounds then move only
    // `Arc` handles — zero payload copies in-process, identical wire volume.
    let a_local: Arc<Csr<S::Elem>> = a.block_csr_shared();
    let b_local: Arc<Csr<S::Elem>> = b.block_csr_shared();
    let mut flops = 0u64;
    run_rounds(
        &mut (timer, &mut c, &mut flops),
        q,
        schedule,
        |_ctx, k| issue_panels(grid, k, &a_local, &b_local, schedule),
        |ctx, k, flight: PanelFlight<S::Elem>| {
            complete_panels(grid, k, &a_local, &b_local, flight, ctx.0)
        },
        |ctx, _k, (a_blk, b_blk)| {
            let (timer, c, flops) = ctx;
            let partial = timer.time(phase::LOCAL_MULT, || {
                spgemm_with::<S, _, _>(&*a_blk, &*b_blk, exec.plain())
            });
            timer.add_thread_flops(&partial.thread_flops);
            **flops += partial.flops;
            timer.time(phase::LOCAL_UPDATE, || {
                let block = c.block_mut();
                partial.result.scan_rows(|r, cols, vals| {
                    for (&cc, &v) in cols.iter().zip(vals) {
                        block.add_entry::<S>(r, cc, v);
                    }
                });
            });
        },
    );
    (c, flops)
}

/// Computes `C = Aᵀ · B` with a SUMMA-style round structure **without ever
/// materializing the distributed transpose of `A`** — the static
/// counterpart of the Section V-C virtual transposition. Collective.
///
/// `C_{i,j} = Σ_k (A_{k,i})ᵀ · B_{k,j}`: in round `r` every rank whose
/// column coordinate is `r` transposes its own `A` panel *locally* (pooled
/// workspace — each rank transposes exactly once across all rounds) and
/// broadcasts it along its process row; every rank multiplies the received
/// panel into its resident `B` block, and the partials merge-reduce down
/// each process column onto the owner of `C_{r,j}`. The wire carries only
/// already-transposed panels — no transposition exchange, no redistributed
/// `Aᵀ` — at the price of a non-local aggregation (the same trade
/// Algorithm 1 makes).
///
/// The column reductions combine partials in binomial-tree order; for
/// exact semirings (associative + commutative `add`) the result equals
/// `summa(Aᵀ materialized, B)` bit for bit (asserted by the parity test);
/// floating-point sums may differ by rounding only.
pub fn summa_transposed<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, u64) {
    summa_transposed_exec::<S>(grid, a, b, &Exec::new(threads), timer)
}

/// [`summa_transposed`] under an explicit [`Exec`] (pooled transposition
/// and kernel workspaces).
pub fn summa_transposed_exec<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, u64) {
    assert_eq!(
        a.info().layout().row_cuts(),
        b.info().layout().row_cuts(),
        "global dimension mismatch in transposed SUMMA: Aᵀ·B contracts over the rows of A and B"
    );
    let q = grid.q();
    let (i, j) = grid.coords();
    let c_layout = Arc::new(a.info().layout().transposed().product(b.info().layout()));
    let mut c = DistMat::empty_in(grid, &c_layout);
    let b_local: Arc<Csr<S::Elem>> = b.block_csr_shared();
    // Root-side local transposition of this rank's own panel (done once;
    // round r broadcasts it from every rank with column coordinate r).
    let at_local: Arc<Csr<S::Elem>> = {
        let a_local = a.block_csr_shared();
        let _sp =
            dspgemm_obs::span("engine", "transpose_virtual").attr("nnz", a_local.nnz() as u64);
        timer.time(phase::TRANSPOSE_LOCAL, || {
            let mut ws = exec.transpose_ws();
            Arc::new(a_local.transpose_into(&mut ws))
        })
    };
    let mut flops = 0u64;
    run_rounds(
        &mut (timer, &mut c, &mut flops),
        q,
        Schedule::Overlap,
        |_ctx, k| {
            grid.row_comm().ibcast_shared(
                k,
                if j == k {
                    Some(Arc::clone(&at_local))
                } else {
                    None
                },
            )
        },
        |ctx, _k, req| await_into_phase(req, ctx.0, phase::BCAST),
        |ctx, k, at_blk| {
            let (timer, c, flops) = ctx;
            let partial = timer.time(phase::LOCAL_MULT, || {
                spgemm_with::<S, _, _>(&*at_blk, &*b_local, exec.plain())
            });
            timer.add_thread_flops(&partial.thread_flops);
            **flops += partial.flops;
            let red = timer.time(phase::REDUCE_SCATTER, || {
                grid.col_comm()
                    .reduce(k, partial.result, |x, y| Dcsr::merge_with(&x, &y, S::add))
            });
            if let Some(mine) = red {
                debug_assert_eq!(i, k);
                timer.time(phase::LOCAL_UPDATE, || {
                    let block = c.block_mut();
                    mine.scan_rows(|r, cols, vals| {
                        for (&cc, &v) in cols.iter().zip(vals) {
                            block.add_entry::<S>(r, cc, v);
                        }
                    });
                });
            }
        },
    );
    (c, flops)
}

/// SUMMA fused with Bloom-filter tracking: returns `(C, F, flops)` where
/// `F` holds, per non-zero of `C`, the ℓ=64-bit bitfield of contributing
/// inner indices (bit `k mod 64`). Pipelined schedule.
pub fn summa_bloom<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, DistMat<u64>, u64) {
    summa_bloom_exec::<S>(grid, a, b, &Exec::new(threads), timer)
}

/// [`summa_bloom`] under an explicit [`Exec`] (see [`summa_exec`]).
pub fn summa_bloom_exec<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, DistMat<u64>, u64) {
    summa_bloom_with::<S>(grid, a, b, exec, timer, Schedule::Overlap)
}

/// [`summa_bloom`] on the serialized schedule (the `repro overlap`
/// baseline; see [`summa_blocking`]).
pub fn summa_bloom_blocking<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    threads: usize,
    timer: &mut PhaseTimer,
) -> (DistMat<S::Elem>, DistMat<u64>, u64) {
    summa_bloom_with::<S>(grid, a, b, &Exec::new(threads), timer, Schedule::Blocking)
}

fn summa_bloom_with<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
    exec: &Exec<S>,
    timer: &mut PhaseTimer,
    schedule: Schedule,
) -> (DistMat<S::Elem>, DistMat<u64>, u64) {
    assert!(
        a.info().layout().conformal_inner(b.info().layout()),
        "SUMMA contraction needs A's column cuts to equal B's row cuts"
    );
    let q = grid.q();
    let c_layout = Arc::new(a.info().layout().product(b.info().layout()));
    let mut c = DistMat::empty_in(grid, &c_layout);
    let mut f = DistMat::empty_in(grid, &c_layout);
    let a_local: Arc<Csr<S::Elem>> = a.block_csr_shared();
    let b_local: Arc<Csr<S::Elem>> = b.block_csr_shared();
    let mut flops = 0u64;
    run_rounds(
        &mut (timer, &mut c, &mut f, &mut flops),
        q,
        schedule,
        |_ctx, k| issue_panels(grid, k, &a_local, &b_local, schedule),
        |ctx, k, flight: PanelFlight<S::Elem>| {
            complete_panels(grid, k, &a_local, &b_local, flight, ctx.0)
        },
        |ctx, k, (a_blk, b_blk)| {
            let (timer, c, f, flops) = ctx;
            // Bloom bits index the *global* inner dimension.
            let k_offset = a.info().layout().col_start(k);
            let partial = timer.time(phase::LOCAL_MULT, || {
                spgemm_bloom_with::<S, _, _>(&*a_blk, &*b_blk, k_offset, exec.fused())
            });
            timer.add_thread_flops(&partial.thread_flops);
            **flops += partial.flops;
            timer.time(phase::LOCAL_UPDATE, || {
                let c_block = c.block_mut();
                partial.result.scan_rows(|r, cols, vals| {
                    for (&cc, &(v, _)) in cols.iter().zip(vals) {
                        c_block.add_entry::<S>(r, cc, v);
                    }
                });
                let f_block = f.block_mut();
                partial.result.scan_rows(|r, cols, vals| {
                    for (&cc, &(_, bits)) in cols.iter().zip(vals) {
                        f_block.combine_entry(r, cc, bits, |x, y| x | y);
                    }
                });
            });
        },
    );
    (c, f, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspgemm_mpi::run;
    use dspgemm_sparse::dense::Dense;
    use dspgemm_sparse::semiring::{MinPlus, U64Plus};
    use dspgemm_sparse::{Index, Triple};
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(5) + 1,
                )
            })
            .collect()
    }

    fn dedup_last(triples: &[Triple<u64>], n: Index) -> Vec<Triple<u64>> {
        let mut m = std::collections::BTreeMap::new();
        for t in triples {
            m.insert((t.row, t.col), t.val);
        }
        let _ = n;
        m.into_iter()
            .map(|((r, c), v)| Triple::new(r, c, v))
            .collect()
    }

    #[test]
    fn summa_matches_dense_reference() {
        let n: Index = 30;
        for p in [1usize, 4, 9] {
            let a_t = random_triples(50, n, 120);
            let b_t = random_triples(51, n, 120);
            let (a_ref, b_ref) = (a_t.clone(), b_t.clone());
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = |t: &Vec<Triple<u64>>| {
                    if comm.rank() == 0 {
                        t.clone()
                    } else {
                        vec![]
                    }
                };
                let a = DistMat::from_global_triples(&grid, n, n, feed(&a_ref), 2, &mut timer);
                let b = DistMat::from_global_triples(&grid, n, n, feed(&b_ref), 2, &mut timer);
                let (c, flops) = summa::<U64Plus>(&grid, &a, &b, 2, &mut timer);
                (c.gather_to_root(comm), flops)
            });
            let da = Dense::from_triples::<U64Plus>(n, n, &dedup_last(&a_t, n));
            let db = Dense::from_triples::<U64Plus>(n, n, &dedup_last(&b_t, n));
            let expect = da.matmul::<U64Plus>(&db);
            let gathered = out.results[0].0.as_ref().unwrap();
            let got = Dense::from_triples::<U64Plus>(n, n, gathered);
            assert_eq!(got.diff(&expect), vec![], "p={p}");
        }
    }

    #[test]
    fn summa_min_plus() {
        let n: Index = 16;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            // Path graph weights: edge i -> i+1 of weight 1.
            let t: Vec<Triple<f64>> = if comm.rank() == 0 {
                (0..n - 1).map(|i| Triple::new(i, i + 1, 1.0)).collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (c, _) = summa::<MinPlus>(&grid, &a, &a, 1, &mut timer);
            c.gather_to_root(comm)
        });
        let got = out.results[0].as_ref().unwrap();
        // A² in (min,+) on a path: entries (i, i+2) with weight 2.
        assert_eq!(got.len(), (n - 2) as usize);
        assert!(got.iter().all(|t| t.col == t.row + 2 && t.val == 2.0));
    }

    /// `summa_transposed(A, B)` equals `summa(Aᵀ materialized, B)` bit for
    /// bit under an exact semiring, on every grid and with non-square
    /// shapes — while never exchanging a transposed operand.
    #[test]
    fn summa_transposed_matches_materialized_transpose() {
        let nr: Index = 21; // A is nr × nc, so Aᵀ·B is nc × nc
        let nc: Index = 27;
        for p in [1usize, 4, 9] {
            let out = run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = |seed: u64, rows: Index, cols: Index| {
                    if comm.rank() == 0 {
                        let mut rng = SplitMix64::new(seed);
                        (0..150)
                            .map(|_| {
                                Triple::new(
                                    rng.gen_range(rows as u64) as Index,
                                    rng.gen_range(cols as u64) as Index,
                                    rng.gen_range(5) + 1,
                                )
                            })
                            .collect::<Vec<Triple<u64>>>()
                    } else {
                        vec![]
                    }
                };
                let a =
                    DistMat::from_global_triples(&grid, nr, nc, feed(90, nr, nc), 1, &mut timer);
                let b =
                    DistMat::from_global_triples(&grid, nr, nc, feed(91, nr, nc), 1, &mut timer);
                let (c_virt, flops) = summa_transposed::<U64Plus>(&grid, &a, &b, 1, &mut timer);
                let at = a.transposed(&grid, 1);
                let (c_mat, _) = summa::<U64Plus>(&grid, &at, &b, 1, &mut timer);
                assert_eq!(c_virt.info().nrows, nc);
                assert_eq!(c_virt.info().ncols, nc);
                (
                    c_virt.gather_to_root(comm),
                    c_mat.gather_to_root(comm),
                    flops,
                )
            });
            let (c_virt, c_mat, _) = &out.results[0];
            assert_eq!(c_virt, c_mat, "p={p}: virtual != materialized Aᵀ·B");
        }
    }

    #[test]
    fn summa_bloom_filter_consistency() {
        let n: Index = 24;
        let out = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let a_t = if comm.rank() == 0 {
                random_triples(60, n, 100)
            } else {
                vec![]
            };
            let b_t = if comm.rank() == 0 {
                random_triples(61, n, 100)
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, a_t, 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, b_t, 1, &mut timer);
            let (c, f, _) = summa_bloom::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            // F and C have identical patterns; every F value is non-zero.
            let ct = c.to_global_triples();
            let ft = f.to_global_triples();
            assert_eq!(ct.len(), ft.len());
            for (ce, fe) in ct.iter().zip(&ft) {
                assert_eq!((ce.row, ce.col), (fe.row, fe.col));
                assert_ne!(fe.val, 0);
            }
            // C itself matches the plain SUMMA result.
            let (c2, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            assert_eq!(c.gather_to_root(comm), c2.gather_to_root(comm));
            true
        });
        assert!(out.results.iter().all(|&b| b));
    }

    #[test]
    fn summa_bcast_volume_scales_with_operands() {
        let n: Index = 64;
        let small = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(70, n, 50)
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (c, _) = summa::<U64Plus>(&grid, &a, &a, 1, &mut timer);
            c.local_nnz()
        });
        let big = run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples(70, n, 2000)
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (c, _) = summa::<U64Plus>(&grid, &a, &a, 1, &mut timer);
            c.local_nnz()
        });
        use dspgemm_mpi::CommCategory;
        assert!(
            big.stats.bytes_in(CommCategory::Bcast) > small.stats.bytes_in(CommCategory::Bcast)
        );
    }
}
