//! Sparse accumulators (SPA) for row-wise SpGEMM.
//!
//! Gustavson's algorithm forms one output row at a time by scattering scaled
//! rows of `B` into an accumulator keyed by column. The paper's local
//! multiplication uses "a sparse accumulator based on a dynamic array
//! combined with a hash table" (Section VI-A); this module provides that
//! hash-based accumulator plus a dense generation-marked variant that is
//! faster when the output width is small enough to afford an O(ncols)
//! scratch array. [`Spa::for_width`] picks automatically.
//!
//! Accumulators are generic over the accumulated payload `A`, so the same
//! code path serves plain values (`A = V`) and value+Bloom-filter fusion
//! (`A = (V, u64)`, Section V-B).

use crate::Index;
use dspgemm_util::FxHashMap;

/// Dense accumulator: O(ncols) scratch with generation marking, O(1) scatter,
/// output gathered from the touched list. Reset is O(touched), so reuse
/// across rows is cheap.
#[derive(Debug)]
pub struct DenseSpa<A> {
    slots: Vec<Option<A>>,
    touched: Vec<Index>,
}

impl<A: Copy> DenseSpa<A> {
    /// Creates an accumulator for output rows of width `ncols`.
    pub fn new(ncols: Index) -> Self {
        Self {
            slots: vec![None; ncols as usize],
            touched: Vec::new(),
        }
    }

    /// Creates an accumulator with *no* scratch yet; [`DenseSpa::ensure_width`]
    /// sizes it on first dense use. Pooled workspaces start here so kernels
    /// whose rows all pick the hash strategy never pay the O(ncols)
    /// allocation.
    pub fn unsized_new() -> Self {
        Self {
            slots: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Grows the scratch to cover columns `0..ncols` (never shrinks — a
    /// pooled accumulator keeps the widest scratch it has ever needed).
    pub fn ensure_width(&mut self, ncols: Index) {
        if self.slots.len() < ncols as usize {
            self.slots.resize(ncols as usize, None);
        }
    }

    /// Bytes of heap the accumulator holds (capacity-based, for the
    /// workspace-reuse regression tests).
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<A>>()
            + self.touched.capacity() * std::mem::size_of::<Index>()
    }

    /// Scatters `value` into `col`, combining with any previous value.
    #[inline]
    pub fn scatter(&mut self, col: Index, value: A, combine: impl FnOnce(A, A) -> A) {
        let slot = &mut self.slots[col as usize];
        match slot {
            Some(prev) => *prev = combine(*prev, value),
            None => {
                *slot = Some(value);
                self.touched.push(col);
            }
        }
    }

    /// Number of distinct columns accumulated so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether nothing has been accumulated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Drains the accumulated row into `out` as column-sorted `(col, value)`
    /// pairs and resets the accumulator for the next row.
    pub fn drain_sorted(&mut self, out: &mut Vec<(Index, A)>) {
        self.touched.sort_unstable();
        out.reserve(self.touched.len());
        for &c in &self.touched {
            let v = self.slots[c as usize].take().expect("touched slot");
            out.push((c, v));
        }
        self.touched.clear();
    }

    /// Drains the accumulated row, column-sorted, appending columns and
    /// values to two flat parallel buffers and resetting the accumulator.
    /// This is the allocation-flat output path of the SpGEMM kernels: one
    /// pair of buffers serves every row of a worker's range.
    pub fn drain_sorted_split(&mut self, cols: &mut Vec<Index>, vals: &mut Vec<A>) {
        self.touched.sort_unstable();
        cols.reserve(self.touched.len());
        vals.reserve(self.touched.len());
        for &c in &self.touched {
            let v = self.slots[c as usize].take().expect("touched slot");
            cols.push(c);
            vals.push(v);
        }
        self.touched.clear();
    }
}

/// Hash accumulator: O(row nnz) memory, for very wide or hypersparse output
/// rows where a dense scratch array would not fit or would thrash caches.
#[derive(Debug)]
pub struct HashSpa<A> {
    map: FxHashMap<Index, A>,
    /// Reusable sort scratch for the split drain (kept across rows so the
    /// flat output path allocates nothing per row).
    scratch: Vec<(Index, A)>,
}

impl<A: Copy> HashSpa<A> {
    /// Creates an empty hash accumulator.
    pub fn new() -> Self {
        Self {
            map: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Scatters `value` into `col`, combining with any previous value.
    #[inline]
    pub fn scatter(&mut self, col: Index, value: A, combine: impl FnOnce(A, A) -> A) {
        match self.map.entry(col) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let prev = *e.get();
                e.insert(combine(prev, value));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
            }
        }
    }

    /// Number of distinct columns accumulated so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been accumulated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drains the accumulated row into `out` as column-sorted `(col, value)`
    /// pairs and resets the accumulator.
    pub fn drain_sorted(&mut self, out: &mut Vec<(Index, A)>) {
        let start = out.len();
        out.extend(self.map.drain());
        out[start..].sort_unstable_by_key(|&(c, _)| c);
    }

    /// Drains the accumulated row into flat column/value buffers,
    /// column-sorted (see [`DenseSpa::drain_sorted_split`]). Sorting goes
    /// through an internal scratch vector reused across rows.
    pub fn drain_sorted_split(&mut self, cols: &mut Vec<Index>, vals: &mut Vec<A>) {
        self.scratch.clear();
        self.scratch.extend(self.map.drain());
        self.scratch.sort_unstable_by_key(|&(c, _)| c);
        cols.reserve(self.scratch.len());
        vals.reserve(self.scratch.len());
        for &(c, v) in &self.scratch {
            cols.push(c);
            vals.push(v);
        }
    }

    /// Bytes of heap the accumulator holds (capacity-based estimate; the
    /// hash map's bucket overhead is approximated by its entry size).
    pub fn heap_bytes(&self) -> usize {
        self.map.capacity() * (std::mem::size_of::<Index>() + std::mem::size_of::<A>())
            + self.scratch.capacity() * std::mem::size_of::<(Index, A)>()
    }
}

impl<A: Copy> Default for HashSpa<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// Width above which the dense scratch array is considered too large and the
/// hash accumulator is used instead.
pub const DENSE_SPA_MAX_WIDTH: Index = 1 << 22;

/// A row prefers the dense scratch only when its flop upper bound reaches
/// `ncols / DENSE_SPA_SPARSITY_DIV`: below that, the row touches so few
/// columns that hash probes beat streaming a cold O(ncols) array through
/// the cache (and an all-sparse kernel call never allocates the dense
/// scratch at all).
pub const DENSE_SPA_SPARSITY_DIV: u64 = 64;

/// The per-row dense-vs-hash strategy choice of the pooled kernels: dense
/// iff the width admits a dense scratch *and* the row's estimated flops
/// clear the [`DENSE_SPA_SPARSITY_DIV`] density bar. Depends only on
/// `(ncols, est_flops)` — never on scheduling or pool state — so every
/// [`crate::local_mm::KernelPlan`] schedule makes identical choices
/// (determinism across schedules).
#[inline]
pub fn dense_row_profitable(ncols: Index, est_flops: u64) -> bool {
    ncols <= DENSE_SPA_MAX_WIDTH && est_flops.saturating_mul(DENSE_SPA_SPARSITY_DIV) >= ncols as u64
}

/// An accumulator that picks the dense or hash strategy by output width.
#[derive(Debug)]
pub enum Spa<A> {
    /// Dense generation-marked scratch.
    Dense(DenseSpa<A>),
    /// Hash-table accumulator.
    Hash(HashSpa<A>),
}

impl<A: Copy> Spa<A> {
    /// Chooses a strategy for output rows of width `ncols`.
    pub fn for_width(ncols: Index) -> Self {
        if ncols <= DENSE_SPA_MAX_WIDTH {
            Spa::Dense(DenseSpa::new(ncols))
        } else {
            Spa::Hash(HashSpa::new())
        }
    }

    /// Scatters `value` into `col`, combining with any previous value.
    #[inline]
    pub fn scatter(&mut self, col: Index, value: A, combine: impl FnOnce(A, A) -> A) {
        match self {
            Spa::Dense(s) => s.scatter(col, value, combine),
            Spa::Hash(s) => s.scatter(col, value, combine),
        }
    }

    /// Number of distinct columns accumulated so far.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Spa::Dense(s) => s.len(),
            Spa::Hash(s) => s.len(),
        }
    }

    /// Whether nothing has been accumulated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the accumulated row into `out`, column-sorted, and resets.
    pub fn drain_sorted(&mut self, out: &mut Vec<(Index, A)>) {
        match self {
            Spa::Dense(s) => s.drain_sorted(out),
            Spa::Hash(s) => s.drain_sorted(out),
        }
    }

    /// Drains the accumulated row into flat column/value buffers,
    /// column-sorted, and resets — the allocation-flat kernel output path.
    pub fn drain_sorted_split(&mut self, cols: &mut Vec<Index>, vals: &mut Vec<A>) {
        match self {
            Spa::Dense(s) => s.drain_sorted_split(cols, vals),
            Spa::Hash(s) => s.drain_sorted_split(cols, vals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(spa: &mut Spa<u64>) {
        spa.scatter(5, 10, |a, b| a + b);
        spa.scatter(1, 2, |a, b| a + b);
        spa.scatter(5, 3, |a, b| a + b);
        assert_eq!(spa.len(), 2);
        let mut out = Vec::new();
        spa.drain_sorted(&mut out);
        assert_eq!(out, vec![(1, 2), (5, 13)]);
        assert!(spa.is_empty());
        // Reusable after drain.
        spa.scatter(0, 1, |a, b| a + b);
        let mut out2 = Vec::new();
        spa.drain_sorted(&mut out2);
        assert_eq!(out2, vec![(0, 1)]);
    }

    #[test]
    fn dense_scatter_combine_drain() {
        let mut spa = Spa::Dense(DenseSpa::new(16));
        exercise(&mut spa);
    }

    #[test]
    fn hash_scatter_combine_drain() {
        let mut spa = Spa::Hash(HashSpa::new());
        exercise(&mut spa);
    }

    #[test]
    fn for_width_picks_strategy() {
        assert!(matches!(Spa::<u64>::for_width(100), Spa::Dense(_)));
        assert!(matches!(
            Spa::<u64>::for_width(DENSE_SPA_MAX_WIDTH + 1),
            Spa::Hash(_)
        ));
    }

    #[test]
    fn fused_bloom_payload() {
        let mut spa: Spa<(u64, u64)> = Spa::for_width(8);
        let combine = |(v1, b1): (u64, u64), (v2, b2): (u64, u64)| (v1 + v2, b1 | b2);
        spa.scatter(3, (5, 1 << 2), combine);
        spa.scatter(3, (7, 1 << 9), combine);
        let mut out = Vec::new();
        spa.drain_sorted(&mut out);
        assert_eq!(out, vec![(3, (12, (1 << 2) | (1 << 9)))]);
    }

    #[test]
    fn split_drain_matches_pair_drain() {
        for mut spa in [Spa::Dense(DenseSpa::new(64)), Spa::Hash(HashSpa::new())] {
            let mut twin = Spa::<u64>::for_width(64);
            for (c, v) in [(9u32, 4u64), (3, 1), (9, 2), (0, 7), (63, 5)] {
                spa.scatter(c, v, |a, b| a + b);
                twin.scatter(c, v, |a, b| a + b);
            }
            let mut pairs = Vec::new();
            twin.drain_sorted(&mut pairs);
            let (mut cols, mut vals) = (vec![99u32], vec![0u64]); // pre-seeded: must append
            spa.drain_sorted_split(&mut cols, &mut vals);
            assert_eq!(cols[0], 99);
            assert_eq!(
                cols[1..]
                    .iter()
                    .zip(&vals[1..])
                    .map(|(&c, &v)| (c, v))
                    .collect::<Vec<_>>(),
                pairs
            );
            assert!(spa.is_empty());
            // Reusable after the split drain.
            spa.scatter(5, 1, |a, b| a + b);
            assert_eq!(spa.len(), 1);
        }
    }

    #[test]
    fn dense_drain_sorts_touched() {
        let mut spa = DenseSpa::new(1000);
        for c in [999, 0, 500, 250, 750] {
            spa.scatter(c, 1u64, |a, b| a + b);
        }
        let mut out = Vec::new();
        spa.drain_sorted(&mut out);
        let cols: Vec<Index> = out.iter().map(|&(c, _)| c).collect();
        assert_eq!(cols, vec![0, 250, 500, 750, 999]);
    }
}
