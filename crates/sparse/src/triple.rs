//! `(row, col, value)` triples — the interchange format.
//!
//! Updates travel between ranks as triples (the paper's `(i, j, x)` tuples,
//! Section IV-B); matrices are constructed from triple streams; DCSR blocks
//! are built from row-major-sorted triples.

use crate::semiring::Semiring;
use crate::Index;
use dspgemm_util::sort::radix_sort_by_key;
use dspgemm_util::{WireDecode, WireEncode, WireError, WireReader, WireSize};

/// A single non-zero entry (or update tuple).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triple<V> {
    /// Row index.
    pub row: Index,
    /// Column index.
    pub col: Index,
    /// Value.
    pub val: V,
}

impl<V> Triple<V> {
    /// Creates a triple.
    #[inline]
    pub fn new(row: Index, col: Index, val: V) -> Self {
        Self { row, col, val }
    }

    /// The `(row, col)` key packed into a `u64` for radix sorting.
    #[inline]
    pub fn key(&self) -> u64 {
        ((self.row as u64) << 32) | self.col as u64
    }
}

impl<V: WireSize> WireSize for Triple<V> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        4 + 4 + self.val.wire_bytes()
    }
}

impl<V: WireEncode> WireEncode for Triple<V> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.row.wire_encode(out);
        self.col.wire_encode(out);
        self.val.wire_encode(out);
    }
}

impl<V: WireDecode> WireDecode for Triple<V> {
    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            row: Index::wire_decode(r)?,
            col: Index::wire_decode(r)?,
            val: V::wire_decode(r)?,
        })
    }
}

/// Sorts triples into row-major `(row, col)` order.
///
/// Uses an LSD radix sort on a densely packed `(row, col)` key: the column
/// field is packed into just enough low bits for the largest column present,
/// so small local blocks sort in 3–4 byte passes instead of 8.
pub fn sort_row_major<V: Clone>(triples: &mut Vec<Triple<V>>) {
    let (mut max_row, mut max_col) = (0u32, 0u32);
    for t in triples.iter() {
        max_row = max_row.max(t.row);
        max_col = max_col.max(t.col);
    }
    let col_bits = 32 - max_col.leading_zeros().min(31);
    let max_key = ((max_row as u64) << col_bits) | max_col as u64;
    radix_sort_by_key(triples, max_key, |t| {
        ((t.row as u64) << col_bits) | t.col as u64
    });
    debug_assert!(dspgemm_util::sort::is_sorted_by_key(triples, Triple::key));
}

/// Returns `true` if `triples` is sorted row-major with no duplicate
/// `(row, col)` keys.
pub fn is_sorted_dedup<V>(triples: &[Triple<V>]) -> bool {
    triples.windows(2).all(|w| w[0].key() < w[1].key())
}

/// Collapses duplicate `(row, col)` keys in *sorted* triples, keeping the
/// **last** occurrence (MPI assembly semantics for "set value" updates:
/// the most recent write wins).
pub fn dedup_last_wins<V: Copy>(triples: &mut Vec<Triple<V>>) {
    debug_assert!(dspgemm_util::sort::is_sorted_by_key(triples, Triple::key));
    if triples.len() <= 1 {
        return;
    }
    let mut w = 0usize;
    for r in 0..triples.len() {
        if w > 0 && triples[w - 1].key() == triples[r].key() {
            triples[w - 1] = triples[r];
        } else {
            triples[w] = triples[r];
            w += 1;
        }
    }
    triples.truncate(w);
}

/// Collapses duplicate `(row, col)` keys in *sorted* triples by combining
/// values with the semiring addition (assembly semantics for "add value"
/// updates; also used when symmetrizing graphs that contain both `(u,v)`
/// and `(v,u)` inputs).
pub fn dedup_add<S: Semiring>(triples: &mut Vec<Triple<S::Elem>>) {
    debug_assert!(dspgemm_util::sort::is_sorted_by_key(triples, Triple::key));
    if triples.len() <= 1 {
        return;
    }
    let mut w = 0usize;
    for r in 0..triples.len() {
        if w > 0 && triples[w - 1].key() == triples[r].key() {
            triples[w - 1].val = S::add(triples[w - 1].val, triples[r].val);
        } else {
            triples[w] = triples[r];
            w += 1;
        }
    }
    triples.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn t(r: Index, c: Index, v: u64) -> Triple<u64> {
        Triple::new(r, c, v)
    }

    #[test]
    fn key_orders_row_major() {
        assert!(t(0, 5, 0).key() < t(1, 0, 0).key());
        assert!(t(2, 3, 0).key() < t(2, 4, 0).key());
    }

    #[test]
    fn sort_row_major_random() {
        let mut rng = SplitMix64::new(42);
        let mut triples: Vec<Triple<u64>> = (0..5000)
            .map(|i| t(rng.gen_range(64) as Index, rng.gen_range(64) as Index, i))
            .collect();
        let mut expect = triples.clone();
        expect.sort_by_key(|x| (x.key(), x.val));
        sort_row_major(&mut triples);
        // Radix sort is stable, so equal keys keep insertion (val) order —
        // matching the sort_by_key above since vals are insertion-unique.
        assert_eq!(triples, expect);
    }

    #[test]
    fn dedup_last_wins_behaviour() {
        let mut v = vec![t(0, 0, 1), t(0, 0, 2), t(0, 1, 3), t(1, 0, 4), t(1, 0, 5)];
        dedup_last_wins(&mut v);
        assert_eq!(v, vec![t(0, 0, 2), t(0, 1, 3), t(1, 0, 5)]);
    }

    #[test]
    fn dedup_add_behaviour() {
        let mut v = vec![t(0, 0, 1), t(0, 0, 2), t(0, 1, 3), t(2, 2, 4), t(2, 2, 6)];
        dedup_add::<U64Plus>(&mut v);
        assert_eq!(v, vec![t(0, 0, 3), t(0, 1, 3), t(2, 2, 10)]);
    }

    #[test]
    fn dedup_empty_and_single() {
        let mut v: Vec<Triple<u64>> = vec![];
        dedup_last_wins(&mut v);
        assert!(v.is_empty());
        let mut v = vec![t(1, 1, 9)];
        dedup_add::<U64Plus>(&mut v);
        assert_eq!(v, vec![t(1, 1, 9)]);
    }

    #[test]
    fn is_sorted_dedup_checks() {
        assert!(is_sorted_dedup(&[t(0, 0, 1), t(0, 1, 1), t(1, 0, 1)]));
        assert!(!is_sorted_dedup(&[t(0, 1, 1), t(0, 0, 1)]));
        assert!(!is_sorted_dedup(&[t(0, 0, 1), t(0, 0, 2)]));
    }

    #[test]
    fn wire_size() {
        assert_eq!(t(0, 0, 0).wire_bytes(), 16);
        let v: Vec<Triple<u64>> = vec![t(0, 0, 0); 3];
        assert_eq!(v.wire_bytes(), 8 + 48);
    }
}
