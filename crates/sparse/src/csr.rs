//! Compressed sparse row storage for static matrices.

use crate::semiring::Semiring;
use crate::triple::{self, Triple};
use crate::workspace::TransposeWorkspace;
use crate::{Index, RowRead, RowScan};
use dspgemm_util::{WireDecode, WireEncode, WireError, WireReader, WireSize};

/// A static sparse matrix in CSR layout.
///
/// Row entries are stored in ascending column order when built through
/// [`Csr::from_triples`]; kernels do not rely on that order (the paper does
/// not sort static layouts either), but sorted order makes merges and tests
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<V> {
    nrows: Index,
    ncols: Index,
    row_ptr: Vec<usize>,
    cols: Vec<Index>,
    vals: Vec<V>,
}

impl<V: Copy> Csr<V> {
    /// An empty matrix of the given shape.
    pub fn empty(nrows: Index, ncols: Index) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows as usize + 1],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds from triples in arbitrary order; duplicates are combined with
    /// the semiring addition.
    pub fn from_triples<S: Semiring<Elem = V>>(
        nrows: Index,
        ncols: Index,
        mut triples: Vec<Triple<V>>,
    ) -> Self {
        triple::sort_row_major(&mut triples);
        triple::dedup_add::<S>(&mut triples);
        Self::from_sorted_triples(nrows, ncols, &triples)
    }

    /// Builds from row-major-sorted, duplicate-free triples.
    ///
    /// # Panics
    /// In debug builds, panics if the input is not sorted and deduplicated,
    /// or if an index is out of range.
    pub fn from_sorted_triples(nrows: Index, ncols: Index, triples: &[Triple<V>]) -> Self {
        debug_assert!(
            triple::is_sorted_dedup(triples),
            "input must be sorted+dedup"
        );
        let mut row_ptr = vec![0usize; nrows as usize + 1];
        for t in triples {
            debug_assert!(t.row < nrows && t.col < ncols, "index out of range");
            row_ptr[t.row as usize + 1] += 1;
        }
        for r in 0..nrows as usize {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut cols = Vec::with_capacity(triples.len());
        let mut vals = Vec::with_capacity(triples.len());
        for t in triples {
            cols.push(t.col);
            vals.push(t.val);
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of structural non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The non-zeros of row `r` as parallel `(cols, vals)` slices.
    #[inline]
    pub fn row(&self, r: Index) -> (&[Index], &[V]) {
        let lo = self.row_ptr[r as usize];
        let hi = self.row_ptr[r as usize + 1];
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Looks up entry `(r, c)` by scanning row `r` (O(row degree); CSR has no
    /// per-row index — dynamic lookups belong to `DhbMatrix`).
    pub fn get(&self, r: Index, c: Index) -> Option<V> {
        let (cols, vals) = self.row(r);
        cols.iter().position(|&x| x == c).map(|i| vals[i])
    }

    /// All entries as row-major triples.
    pub fn to_triples(&self) -> Vec<Triple<V>> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.push(Triple::new(r, c, v));
            }
        }
        out
    }

    /// The transposed matrix (counting-sort by column; `O(nnz + n)`).
    ///
    /// Allocates fresh output storage; hot paths that transpose repeatedly
    /// should use [`Csr::transpose_into`] with a pooled workspace instead.
    pub fn transpose(&self) -> Csr<V> {
        self.transpose_into(&mut TransposeWorkspace::new())
    }

    /// [`Csr::transpose`] through a reusable [`TransposeWorkspace`]: the
    /// counting-sort cursor scratch is kept across calls and the output
    /// arrays start from recycled capacity (see [`Csr::recycle_into`]), so a
    /// steady-state transpose loop stops allocating once the workload's
    /// high-water sizes are reached.
    ///
    /// Entries within each output row land in ascending column order (input
    /// rows are scanned in order), so a transpose of a column-sorted matrix
    /// is again column-sorted.
    pub fn transpose_into(&self, ws: &mut TransposeWorkspace<V>) -> Csr<V> {
        let n_out = self.ncols as usize;
        let mut row_ptr = std::mem::take(&mut ws.spare_row_ptr);
        row_ptr.clear();
        row_ptr.resize(n_out + 1, 0);
        for &c in &self.cols {
            row_ptr[c as usize + 1] += 1;
        }
        for c in 0..n_out {
            row_ptr[c + 1] += row_ptr[c];
        }
        let cursor = &mut ws.counts;
        cursor.clear();
        cursor.extend_from_slice(&row_ptr[..n_out]);
        let mut cols = std::mem::take(&mut ws.spare_cols);
        cols.clear();
        cols.resize(self.nnz(), 0);
        let mut vals = std::mem::take(&mut ws.spare_vals);
        vals.clear();
        // Fill with placeholder then overwrite by position.
        vals.extend(self.vals.iter().copied());
        for r in 0..self.nrows {
            let (rcols, rvals) = self.row(r);
            for (&c, &v) in rcols.iter().zip(rvals) {
                let pos = cursor[c as usize];
                cols[pos] = r;
                vals[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Returns this matrix's storage to `ws` for the next
    /// [`Csr::transpose_into`] call — the reclamation half of the pooled
    /// transpose cycle, for callers that own the transposed block
    /// exclusively once they are done with it.
    pub fn recycle_into(self, ws: &mut TransposeWorkspace<V>) {
        ws.spare_row_ptr = self.row_ptr;
        ws.spare_cols = self.cols;
        ws.spare_vals = self.vals;
    }

    /// Element-wise addition over a semiring (used by static baselines that
    /// rebuild `A + A*` from scratch).
    pub fn add<S: Semiring<Elem = V>>(&self, other: &Csr<V>) -> Csr<V> {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut triples = self.to_triples();
        triples.extend(other.to_triples());
        Csr::from_triples::<S>(self.nrows, self.ncols, triples)
    }

    /// Heap bytes held by the three storage arrays (capacity, not length) —
    /// the snapshot-retention regression signal: a published epoch's memory
    /// footprint is the sum of its blocks' `heap_bytes`.
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.capacity() * std::mem::size_of::<usize>()
            + self.cols.capacity() * std::mem::size_of::<Index>()
            + self.vals.capacity() * std::mem::size_of::<V>()
    }

    /// Internal consistency check (row pointers monotone, indices in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.nrows as usize + 1 {
            return Err("row_ptr length mismatch".into());
        }
        if *self.row_ptr.last().unwrap() != self.cols.len() || self.cols.len() != self.vals.len() {
            return Err("nnz bookkeeping mismatch".into());
        }
        for w in self.row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err("row_ptr not monotone".into());
            }
        }
        if self.cols.iter().any(|&c| c >= self.ncols) {
            return Err("column index out of range".into());
        }
        Ok(())
    }
}

impl<V: Copy> RowRead<V> for Csr<V> {
    #[inline]
    fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    fn ncols(&self) -> Index {
        self.ncols
    }

    #[inline]
    fn row(&self, r: Index) -> (&[Index], &[V]) {
        Csr::row(self, r)
    }
}

impl<V: Copy> RowScan<V> for Csr<V> {
    #[inline]
    fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    fn ncols(&self) -> Index {
        self.ncols
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.cols.len()
    }

    fn scan_rows(&self, mut f: impl FnMut(Index, &[Index], &[V])) {
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            if !cols.is_empty() {
                f(r, cols, vals);
            }
        }
    }

    fn scan_row_range(&self, lo: Index, hi: Index, mut f: impl FnMut(Index, &[Index], &[V])) {
        for r in lo..hi {
            let (cols, vals) = self.row(r);
            if !cols.is_empty() {
                f(r, cols, vals);
            }
        }
    }
}

impl<V: WireSize> WireSize for Csr<V> {
    /// Packed size: shape header + 8 B per row pointer + 4 B per column index
    /// + value payload. This is what `MPI_Send` of a packed CSR would move.
    fn wire_bytes(&self) -> u64 {
        16 + 8 * self.row_ptr.len() as u64
            + 4 * self.cols.len() as u64
            + self.vals.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<V: WireEncode> WireEncode for Csr<V> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.nrows.wire_encode(out);
        self.ncols.wire_encode(out);
        self.row_ptr.wire_encode(out);
        self.cols.wire_encode(out);
        self.vals.wire_encode(out);
    }
}

impl<V: WireDecode> WireDecode for Csr<V> {
    /// Decoding validates the CSR invariants before constructing, so a
    /// corrupt or mismatched stream surfaces as a [`WireError`] instead of
    /// an out-of-bounds panic deep inside a kernel.
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nrows = Index::wire_decode(r)?;
        let ncols = Index::wire_decode(r)?;
        let row_ptr = Vec::<usize>::wire_decode(r)?;
        let cols = Vec::<Index>::wire_decode(r)?;
        let vals = Vec::<V>::wire_decode(r)?;
        if row_ptr.len() != nrows as usize + 1
            || cols.len() != vals.len()
            || row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&cols.len())
            || row_ptr.windows(2).any(|w| w[0] > w[1])
            || cols.iter().any(|&c| c >= ncols)
        {
            return Err(WireError::Invalid("csr invariants"));
        }
        Ok(Self {
            nrows,
            ncols,
            row_ptr,
            cols,
            vals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::U64Plus;

    fn t(r: Index, c: Index, v: u64) -> Triple<u64> {
        Triple::new(r, c, v)
    }

    fn sample() -> Csr<u64> {
        // 3x4:
        // [10  0 11  0]
        // [ 0  0  0  0]
        // [12 13  0 14]
        Csr::from_triples::<U64Plus>(
            3,
            4,
            vec![
                t(2, 3, 14),
                t(0, 0, 10),
                t(2, 0, 12),
                t(0, 2, 11),
                t(2, 1, 13),
            ],
        )
    }

    #[test]
    fn construction_and_rows() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[10u64, 11][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row(2), (&[0u32, 1, 3][..], &[12u64, 13, 14][..]));
        m.validate().unwrap();
    }

    #[test]
    fn duplicates_combine_with_add() {
        let m = Csr::from_triples::<U64Plus>(2, 2, vec![t(0, 0, 1), t(0, 0, 2), t(1, 1, 5)]);
        assert_eq!(m.get(0, 0), Some(3));
        assert_eq!(m.get(1, 1), Some(5));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn triples_roundtrip() {
        let m = sample();
        let back = Csr::from_sorted_triples(3, 4, &m.to_triples());
        assert_eq!(m, back);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        // Check one transposed entry.
        assert_eq!(m.transpose().get(3, 2), Some(14));
        assert_eq!(m.transpose().nrows(), 4);
    }

    #[test]
    fn transpose_into_matches_transpose_and_reuses_buffers() {
        let m = sample();
        let mut ws = TransposeWorkspace::new();
        let t1 = m.transpose_into(&mut ws);
        assert_eq!(t1, m.transpose());
        t1.validate().unwrap();
        // Recycle the output, then re-transpose: the workspace heap must not
        // grow once its high-water capacities are reached.
        t1.recycle_into(&mut ws);
        let steady = ws.heap_bytes();
        assert!(steady > 0);
        for _ in 0..3 {
            let t = m.transpose_into(&mut ws);
            assert_eq!(t, m.transpose());
            t.recycle_into(&mut ws);
            assert_eq!(ws.heap_bytes(), steady, "workspace heap must not regrow");
        }
    }

    #[test]
    fn transpose_into_preserves_column_sorted_rows() {
        let m = sample();
        let t = m.transpose();
        for r in 0..t.nrows() {
            let (cols, _) = t.row(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} unsorted");
        }
    }

    #[test]
    fn add_elementwise() {
        let a = Csr::from_triples::<U64Plus>(2, 2, vec![t(0, 0, 1), t(0, 1, 2)]);
        let b = Csr::from_triples::<U64Plus>(2, 2, vec![t(0, 0, 10), t(1, 1, 3)]);
        let c = a.add::<U64Plus>(&b);
        assert_eq!(c.get(0, 0), Some(11));
        assert_eq!(c.get(0, 1), Some(2));
        assert_eq!(c.get(1, 1), Some(3));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn empty_matrix() {
        let m: Csr<u64> = Csr::empty(5, 5);
        assert_eq!(m.nnz(), 0);
        m.validate().unwrap();
        assert_eq!(m.to_triples(), vec![]);
        assert_eq!(m.transpose().nrows(), 5);
    }

    #[test]
    fn scan_rows_skips_empty() {
        let m = sample();
        let mut rows = vec![];
        RowScan::scan_rows(&m, |r, cols, _| {
            rows.push((r, cols.len()));
        });
        assert_eq!(rows, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn scan_row_range() {
        let m = sample();
        let mut rows = vec![];
        RowScan::scan_row_range(&m, 1, 3, |r, _, _| rows.push(r));
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn wire_bytes_formula() {
        let m = sample();
        // 16 header + 8*4 row_ptr + 4*5 cols + 8*5 vals.
        assert_eq!(m.wire_bytes(), 16 + 32 + 20 + 40);
    }
}
