//! The ℓ=64-bit Bloom-filter bitfields of the general dynamic SpGEMM.
//!
//! While computing `C = A · B`, the general algorithm remembers, per output
//! entry `c_ij`, *which* inner indices `k` contributed a term `a_ik · b_kj` —
//! compressed into an ℓ-bit bitfield by setting bit `k mod ℓ` (Section V-B;
//! the paper uses ℓ = 64 in practice, as do we). From these bitfields the
//! algorithm later derives
//!
//! * `E = (F ⊕ F*) masked at C*` — the per-entry filters of the entries that
//!   must be recomputed, and
//! * the row-reduction `R` of `E` (bitwise OR over each row), whose bit
//!   `k mod ℓ` says "some entry of row `i` of `C'` may need column `k` of
//!   `A'`" — the filter that prunes what gets communicated.
//!
//! A set bit is a *may-contribute* (Bloom filters have false positives via
//! the mod-ℓ aliasing, never false negatives), so filtering with `R` is
//! conservative: it can only keep too much, never drop a needed column.

use crate::Index;

/// Width of the Bloom bitfields (the paper's ℓ).
pub const BLOOM_BITS: u32 = 64;

/// The bit recording inner index `k`: `1 << (k mod 64)`.
#[inline]
pub fn bloom_bit(k: Index) -> u64 {
    1u64 << (k % BLOOM_BITS)
}

/// Whether the bitfield `bits` may include inner index `k`.
#[inline]
pub fn may_contain(bits: u64, k: Index) -> bool {
    bits & bloom_bit(k) != 0
}

/// Element-wise OR of two filter vectors (used to allreduce `R` across a
/// process-grid row).
pub fn or_assign(acc: &mut [u64], other: &[u64]) {
    assert_eq!(acc.len(), other.len(), "filter vector length mismatch");
    for (a, b) in acc.iter_mut().zip(other) {
        *a |= *b;
    }
}

/// Reduces the rows of a filter block to a per-row bitfield vector: entry `i`
/// ORs the bitfields of every stored entry in row `i`. `nrows` is the block's
/// logical row count.
pub fn row_or_reduce(block: &crate::dcsr::Dcsr<u64>, nrows: Index) -> Vec<u64> {
    let mut out = vec![0u64; nrows as usize];
    for (r, _cols, vals) in block.iter_rows() {
        let mut acc = 0u64;
        for &v in vals {
            acc |= v;
        }
        out[r as usize] |= acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsr::Dcsr;
    use crate::semiring::U64Plus;
    use crate::triple::Triple;

    #[test]
    fn bit_wraps_mod_64() {
        assert_eq!(bloom_bit(0), 1);
        assert_eq!(bloom_bit(63), 1 << 63);
        assert_eq!(bloom_bit(64), 1);
        assert_eq!(bloom_bit(130), 1 << 2);
    }

    #[test]
    fn may_contain_no_false_negatives() {
        for k in 0..1000u32 {
            let bits = bloom_bit(k);
            assert!(may_contain(bits, k));
            // Aliasing: k + 64 also "contained" (false positive by design).
            assert!(may_contain(bits, k + 64));
        }
    }

    #[test]
    fn or_assign_vectors() {
        let mut a = vec![0b01u64, 0b10, 0];
        or_assign(&mut a, &[0b10, 0b10, 0b100]);
        assert_eq!(a, vec![0b11, 0b10, 0b100]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn or_assign_length_mismatch() {
        let mut a = vec![0u64];
        or_assign(&mut a, &[0, 0]);
    }

    #[test]
    fn row_reduce_ors_row_entries() {
        let block = Dcsr::from_triples::<U64Plus>(
            5,
            5,
            vec![
                Triple::new(1, 0, 0b001u64),
                Triple::new(1, 3, 0b100),
                Triple::new(4, 2, 0b010),
            ],
        );
        let r = row_or_reduce(&block, 5);
        assert_eq!(r, vec![0, 0b101, 0, 0, 0b010]);
    }
}
