//! # dspgemm-sparse — local sparse matrix kernels
//!
//! Everything a single rank computes locally, independent of MPI:
//!
//! * [`semiring`] — the algebraic structure SpGEMM is generic over. The paper
//!   evaluates `(+, ·)` for the algebraic dynamic algorithm and `(min, +)`
//!   for the general one; both (and more) are provided.
//! * [`triple`] — `(row, col, value)` entries: the interchange format for
//!   construction, updates and redistribution.
//! * [`csr`] / [`dcsr`] — static storage: compressed sparse row and the
//!   doubly-compressed variant for hypersparse matrices (Section IV: update
//!   matrices and SpGEMM intermediates are DCSR).
//! * [`dhb`] — the *dynamic* per-block storage: adjacency arrays with per-row
//!   hash indices, modelled on the DHB data structure the paper builds on
//!   (the paper's reference \[27\]): expected O(1) insert/update/delete of a non-zero.
//! * [`spa`] — sparse accumulators for Gustavson's row-wise product.
//! * [`workspace`] — pooled per-thread kernel workspaces (SPA scratch + flat
//!   output buffers) leased per multiply, so pipelined rounds stop
//!   reallocating.
//! * [`local_mm`] — Gustavson SpGEMM over any semiring, with flop accounting,
//!   optionally fused with Bloom-filter tracking (Section V-B), scheduled
//!   over flop-balanced or work-stealing row ranges
//!   ([`local_mm::KernelPlan`]).
//! * [`masked_mm`] — output-masked SpGEMM used by the general dynamic
//!   algorithm (recompute only entries masked by `C*`).
//! * [`bloom`] — the ℓ=64-bit Bloom-filter bitfields `F`, `F*`, `E`, `R`.
//! * [`ops`] — element-wise addition / MERGE / MASK and the Bloom-guided
//!   row/column filter extraction `A^R`.
//! * [`dense`] — a tiny dense reference implementation used by tests and
//!   property checks (never by the fast paths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod csr;
pub mod dcsr;
pub mod dense;
pub mod dhb;
pub mod local_mm;
pub mod masked_mm;
pub mod ops;
pub mod semiring;
pub mod spa;
pub mod triple;
pub mod workspace;

pub use csr::Csr;
pub use dcsr::Dcsr;
pub use dhb::DhbMatrix;
pub use semiring::{BoolOrAnd, F64MaxMin, F64Plus, MinPlus, Semiring, U64Plus};
pub use triple::Triple;

/// Row/column index type. All paper instances have `n < 2^32`; 32-bit indices
/// halve index bandwidth, which matters because communication volume is the
/// paper's key cost metric.
pub type Index = u32;

/// Access to the rows a Gustavson multiplication *indexes into* (the
/// right-hand side). Implemented by storages with O(1) row lookup: [`Csr`]
/// and [`DhbMatrix`] — deliberately **not** by [`Dcsr`], which matches the
/// paper's observation that its algorithms never need to index into a doubly
/// compressed layout.
///
/// Row entries are exposed as parallel `(cols, vals)` slices; entries within
/// a row carry **no ordering guarantee** (dynamic storage keeps insertion
/// order), which Gustavson's algorithm does not require.
pub trait RowRead<V> {
    /// Number of rows.
    fn nrows(&self) -> Index;
    /// Number of columns.
    fn ncols(&self) -> Index;
    /// The non-zeros of row `r` as parallel column/value slices.
    fn row(&self, r: Index) -> (&[Index], &[V]);
}

/// Iteration over the *non-empty* rows of the left-hand side of a Gustavson
/// multiplication. Implemented by [`Csr`], [`Dcsr`] and [`DhbMatrix`].
pub trait RowScan<V> {
    /// Number of rows.
    fn nrows(&self) -> Index;
    /// Number of columns.
    fn ncols(&self) -> Index;
    /// Total non-zeros.
    fn nnz(&self) -> usize;
    /// Calls `f(row, cols, vals)` for every non-empty row in increasing row
    /// order. Entries within a row carry no ordering guarantee.
    fn scan_rows(&self, f: impl FnMut(Index, &[Index], &[V]));
    /// Calls `f(row, cols, vals)` for the non-empty rows in `lo..hi` in
    /// increasing row order (the unit of intra-rank parallelism).
    fn scan_row_range(&self, lo: Index, hi: Index, f: impl FnMut(Index, &[Index], &[V]));
}
