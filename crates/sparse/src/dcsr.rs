//! Doubly compressed sparse row storage for hypersparse matrices.
//!
//! A hypersparse matrix has `nnz ≪ n`: most rows are empty, so CSR's dense
//! `n + 1` row-pointer array dominates its footprint *and its wire size*.
//! DCSR stores pointers only for non-empty rows (the row-id array `rows` plus
//! a compressed `row_ptr`), which "can substantially decrease communication
//! volume when hypersparse matrices need to be communicated" (Section IV).
//!
//! Update matrices (`A*`, `B*`), SpGEMM partial blocks (`Xᵢ`, `Yⱼ`) and the
//! pattern/filter blocks of the general algorithm are all DCSR. None of the
//! algorithms ever *indexes* into a DCSR (only scans it), so no per-row
//! lookup structure is kept — exactly as the paper prescribes.

use crate::semiring::Semiring;
use crate::triple::{self, Triple};
use crate::workspace::TransposeWorkspace;
use crate::{Index, RowScan};
use dspgemm_util::{WireDecode, WireEncode, WireError, WireReader, WireSize};

/// A hypersparse matrix: row ids + compressed row pointers + column/value
/// arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsr<V> {
    nrows: Index,
    ncols: Index,
    /// Sorted ids of non-empty rows.
    rows: Vec<Index>,
    /// `row_ptr[i]..row_ptr[i+1]` spans the entries of `rows[i]`.
    row_ptr: Vec<usize>,
    cols: Vec<Index>,
    vals: Vec<V>,
}

impl<V: Copy> Dcsr<V> {
    /// An empty matrix of the given shape.
    pub fn empty(nrows: Index, ncols: Index) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            row_ptr: vec![0],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// An empty matrix with capacity for `rows_cap` stored rows and
    /// `nnz_cap` entries, so bulk appends ([`Dcsr::append_rows_flat`]) never
    /// reallocate.
    pub fn with_capacity(nrows: Index, ncols: Index, rows_cap: usize, nnz_cap: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(rows_cap + 1);
        row_ptr.push(0);
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(rows_cap),
            row_ptr,
            cols: Vec::with_capacity(nnz_cap),
            vals: Vec::with_capacity(nnz_cap),
        }
    }

    /// Builds a matrix directly from its flat storage arrays, taking
    /// ownership without copying — the bulk-construction path of the SpGEMM
    /// kernels, which drain their accumulators straight into these buffers.
    ///
    /// `rows` are the strictly increasing ids of the non-empty rows;
    /// `row_ptr` has one more element than `rows`, starts at 0, is strictly
    /// increasing and ends at `cols.len()`; `cols` and `vals` are parallel.
    /// Invariants are debug-asserted ([`Dcsr::validate`]).
    pub fn from_parts(
        nrows: Index,
        ncols: Index,
        rows: Vec<Index>,
        row_ptr: Vec<usize>,
        cols: Vec<Index>,
        vals: Vec<V>,
    ) -> Self {
        let m = Self {
            nrows,
            ncols,
            rows,
            row_ptr,
            cols,
            vals,
        };
        debug_assert_eq!(m.validate(), Ok(()));
        m
    }

    /// Bulk-appends a block of rows given in the flat `(rows, row_ptr,
    /// cols, vals)` form of [`Dcsr::from_parts`]. All appended row ids must
    /// exceed the last stored row id — the concatenation path for per-range
    /// kernel outputs, which arrive in disjoint increasing row ranges. One
    /// `memcpy` per array, no per-row work.
    pub fn append_rows_flat(
        &mut self,
        rows: &[Index],
        row_ptr: &[usize],
        cols: &[Index],
        vals: &[V],
    ) {
        debug_assert_eq!(row_ptr.len(), rows.len() + 1);
        debug_assert_eq!(row_ptr[0], 0, "flat part must start at offset 0");
        debug_assert_eq!(*row_ptr.last().expect("row_ptr non-empty"), cols.len());
        debug_assert_eq!(cols.len(), vals.len());
        if rows.is_empty() {
            return;
        }
        debug_assert!(self.rows.last().is_none_or(|&last| last < rows[0]));
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        let offset = self.cols.len();
        self.rows.extend_from_slice(rows);
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
        self.row_ptr
            .extend(row_ptr[1..].iter().map(|&p| offset + p));
    }

    /// Builds from triples in arbitrary order, combining duplicates with the
    /// semiring addition.
    pub fn from_triples<S: Semiring<Elem = V>>(
        nrows: Index,
        ncols: Index,
        mut triples: Vec<Triple<V>>,
    ) -> Self {
        triple::sort_row_major(&mut triples);
        triple::dedup_add::<S>(&mut triples);
        Self::from_sorted_triples(nrows, ncols, &triples)
    }

    /// Builds from row-major-sorted, duplicate-free triples.
    pub fn from_sorted_triples(nrows: Index, ncols: Index, triples: &[Triple<V>]) -> Self {
        debug_assert!(
            triple::is_sorted_dedup(triples),
            "input must be sorted+dedup"
        );
        let mut m = Self::empty(nrows, ncols);
        m.cols.reserve(triples.len());
        m.vals.reserve(triples.len());
        for t in triples {
            debug_assert!(t.row < nrows && t.col < ncols, "index out of range");
            m.push_row_entry(t.row, t.col, t.val);
        }
        m
    }

    /// Appends an entry; `row` must be ≥ the last appended row (row-major
    /// append order). Used by kernels that emit output rows in order.
    #[inline]
    pub fn push_row_entry(&mut self, row: Index, col: Index, val: V) {
        match self.rows.last() {
            Some(&last) if last == row => {}
            Some(&last) => {
                debug_assert!(last < row, "rows must be appended in increasing order");
                self.rows.push(row);
                self.row_ptr.push(self.cols.len());
            }
            None => {
                self.rows.push(row);
                self.row_ptr.push(self.cols.len());
            }
        }
        self.cols.push(col);
        self.vals.push(val);
        *self.row_ptr.last_mut().unwrap() = self.cols.len();
    }

    /// Appends a whole row (cols/vals parallel slices); rows must arrive in
    /// increasing order and must be non-empty.
    pub fn push_row(&mut self, row: Index, cols: &[Index], vals: &[V]) {
        debug_assert!(!cols.is_empty());
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert!(self.rows.last().is_none_or(|&last| last < row));
        self.rows.push(row);
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
        self.row_ptr.push(self.cols.len());
    }

    /// Number of rows (logical shape, not stored rows).
    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of structural non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Number of non-empty rows.
    #[inline]
    pub fn nrows_stored(&self) -> usize {
        self.rows.len()
    }

    /// Iterates `(row, cols, vals)` over non-empty rows in increasing row
    /// order.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Index, &[Index], &[V])> + '_ {
        self.rows.iter().enumerate().map(move |(i, &r)| {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            (r, &self.cols[lo..hi], &self.vals[lo..hi])
        })
    }

    /// All entries as row-major triples.
    pub fn to_triples(&self) -> Vec<Triple<V>> {
        let mut out = Vec::with_capacity(self.nnz());
        for (r, cols, vals) in self.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                out.push(Triple::new(r, c, v));
            }
        }
        out
    }

    /// Maps the values (keeping the pattern).
    pub fn map<W: Copy>(&self, mut f: impl FnMut(V) -> W) -> Dcsr<W> {
        Dcsr {
            nrows: self.nrows,
            ncols: self.ncols,
            rows: self.rows.clone(),
            row_ptr: self.row_ptr.clone(),
            cols: self.cols.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// The transposed matrix in canonical (row-major sorted, duplicate-free)
    /// form, through a reusable [`TransposeWorkspace`] (counting sort by
    /// column; `O(nnz + ncols)` — the `O(ncols)` cursor scratch is pooled,
    /// which is what makes per-round virtual transposition allocation-free
    /// in steady state).
    ///
    /// Canonicality is the bit-identity lemma of the virtual-transposition
    /// path: the output's stored rows are the input's distinct columns in
    /// ascending order, entries within each output row follow the input's
    /// ascending row order, and the input is duplicate-free — so the result
    /// equals `Dcsr::from_sorted_triples` over the flipped entry set,
    /// exactly what a physically exchanged transposed block would contain.
    pub fn transpose_into(&self, ws: &mut TransposeWorkspace<V>) -> Dcsr<V> {
        let n_out = self.ncols as usize;
        let counts = &mut ws.counts;
        counts.clear();
        counts.resize(n_out, 0);
        for &c in &self.cols {
            counts[c as usize] += 1;
        }
        let mut rows = std::mem::take(&mut ws.spare_rows);
        rows.clear();
        let mut row_ptr = std::mem::take(&mut ws.spare_row_ptr);
        row_ptr.clear();
        row_ptr.push(0);
        // Compact the counts into the stored-row list and turn them into
        // per-column start cursors in the same pass.
        let mut cum = 0usize;
        for (c, count) in counts.iter_mut().enumerate() {
            let k = *count;
            if k > 0 {
                rows.push(c as Index);
                cum += k;
                row_ptr.push(cum);
            }
            *count = cum - k;
        }
        let mut cols = std::mem::take(&mut ws.spare_cols);
        cols.clear();
        cols.resize(self.nnz(), 0);
        let mut vals = std::mem::take(&mut ws.spare_vals);
        vals.clear();
        // Fill with placeholder then overwrite by position.
        vals.extend(self.vals.iter().copied());
        for (r, rcols, rvals) in self.iter_rows() {
            for (&c, &v) in rcols.iter().zip(rvals) {
                let pos = counts[c as usize];
                cols[pos] = r;
                vals[pos] = v;
                counts[c as usize] += 1;
            }
        }
        let m = Dcsr {
            nrows: self.ncols,
            ncols: self.nrows,
            rows,
            row_ptr,
            cols,
            vals,
        };
        debug_assert_eq!(m.validate(), Ok(()));
        m
    }

    /// [`Dcsr::transpose_into`] with a throwaway workspace.
    pub fn transpose(&self) -> Dcsr<V> {
        self.transpose_into(&mut TransposeWorkspace::new())
    }

    /// Returns this matrix's storage to `ws` for the next
    /// [`Dcsr::transpose_into`] call (see `Csr::recycle_into`).
    pub fn recycle_into(self, ws: &mut TransposeWorkspace<V>) {
        ws.spare_rows = self.rows;
        ws.spare_row_ptr = self.row_ptr;
        ws.spare_cols = self.cols;
        ws.spare_vals = self.vals;
    }

    /// Merges two DCSR matrices, combining coinciding entries with `combine`.
    ///
    /// This is the kernel of the sparse aggregation (reduce) in Algorithm 1:
    /// partial blocks `Xᵢ` with different sparsity patterns are merged
    /// pairwise up the reduction tree. Both inputs must have entries in
    /// column-sorted order within each row (true for all kernel outputs);
    /// the result preserves that order. Runs in `O(nnz(a) + nnz(b))`.
    pub fn merge_with(a: &Dcsr<V>, b: &Dcsr<V>, mut combine: impl FnMut(V, V) -> V) -> Dcsr<V> {
        assert_eq!(a.nrows, b.nrows, "shape mismatch");
        assert_eq!(a.ncols, b.ncols, "shape mismatch");
        let mut out = Dcsr::empty(a.nrows, a.ncols);
        out.cols.reserve(a.nnz() + b.nnz());
        out.vals.reserve(a.nnz() + b.nnz());
        let mut ia = 0usize;
        let mut ib = 0usize;
        while ia < a.rows.len() || ib < b.rows.len() {
            let ra = a.rows.get(ia).copied();
            let rb = b.rows.get(ib).copied();
            match (ra, rb) {
                (Some(r), None) => {
                    let (lo, hi) = (a.row_ptr[ia], a.row_ptr[ia + 1]);
                    out.push_row(r, &a.cols[lo..hi], &a.vals[lo..hi]);
                    ia += 1;
                }
                (None, Some(r)) => {
                    let (lo, hi) = (b.row_ptr[ib], b.row_ptr[ib + 1]);
                    out.push_row(r, &b.cols[lo..hi], &b.vals[lo..hi]);
                    ib += 1;
                }
                (Some(r1), Some(r2)) if r1 < r2 => {
                    let (lo, hi) = (a.row_ptr[ia], a.row_ptr[ia + 1]);
                    out.push_row(r1, &a.cols[lo..hi], &a.vals[lo..hi]);
                    ia += 1;
                }
                (Some(r1), Some(r2)) if r2 < r1 => {
                    let (lo, hi) = (b.row_ptr[ib], b.row_ptr[ib + 1]);
                    out.push_row(r2, &b.cols[lo..hi], &b.vals[lo..hi]);
                    ib += 1;
                }
                (Some(r), Some(_)) => {
                    // Same row: merge the column-sorted entry runs.
                    let (alo, ahi) = (a.row_ptr[ia], a.row_ptr[ia + 1]);
                    let (blo, bhi) = (b.row_ptr[ib], b.row_ptr[ib + 1]);
                    let mut ja = alo;
                    let mut jb = blo;
                    while ja < ahi || jb < bhi {
                        let ca = a.cols.get(ja).copied().filter(|_| ja < ahi);
                        let cb = b.cols.get(jb).copied().filter(|_| jb < bhi);
                        match (ca, cb) {
                            (Some(c1), Some(c2)) if c1 == c2 => {
                                out.push_row_entry(r, c1, combine(a.vals[ja], b.vals[jb]));
                                ja += 1;
                                jb += 1;
                            }
                            (Some(c1), Some(c2)) if c1 < c2 => {
                                out.push_row_entry(r, c1, a.vals[ja]);
                                ja += 1;
                            }
                            (Some(_), Some(c2)) => {
                                out.push_row_entry(r, c2, b.vals[jb]);
                                jb += 1;
                            }
                            (Some(c1), None) => {
                                out.push_row_entry(r, c1, a.vals[ja]);
                                ja += 1;
                            }
                            (None, Some(c2)) => {
                                out.push_row_entry(r, c2, b.vals[jb]);
                                jb += 1;
                            }
                            (None, None) => unreachable!(),
                        }
                    }
                    ia += 1;
                    ib += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// Merge-add over a semiring (the common case of [`Dcsr::merge_with`]).
    pub fn merge_add<S: Semiring<Elem = V>>(a: &Dcsr<V>, b: &Dcsr<V>) -> Dcsr<V> {
        Self::merge_with(a, b, S::add)
    }

    /// Builds an O(1) row-access adapter over this matrix.
    ///
    /// The paper's invariant is that its algorithms never *search* inside a
    /// DCSR. The `A · B*` pass of Algorithm 1 iterates the rows of `A` and
    /// needs the matching rows of the broadcast hypersparse `B*` block; this
    /// adapter provides them in O(1) via a dense row-position table built in
    /// `O(local rows + stored rows)` — a local scratch structure, never
    /// communicated, so the DCSR wire-size benefit is untouched.
    pub fn row_reader(&self) -> DcsrRowReader<'_, V> {
        let mut pos = vec![u32::MAX; self.nrows as usize];
        for (i, &r) in self.rows.iter().enumerate() {
            pos[r as usize] = i as u32;
        }
        DcsrRowReader { d: self, pos }
    }

    /// Internal consistency check.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows.len() + 1 {
            return Err("row_ptr length mismatch".into());
        }
        if *self.row_ptr.last().unwrap() != self.cols.len() || self.cols.len() != self.vals.len() {
            return Err("nnz bookkeeping mismatch".into());
        }
        if !self.rows.windows(2).all(|w| w[0] < w[1]) {
            return Err("row ids not strictly increasing".into());
        }
        if self.rows.iter().any(|&r| r >= self.nrows) {
            return Err("row id out of range".into());
        }
        if self.cols.iter().any(|&c| c >= self.ncols) {
            return Err("column index out of range".into());
        }
        for w in self.row_ptr.windows(2) {
            if w[0] >= w[1] {
                return Err("empty row stored".into());
            }
        }
        Ok(())
    }
}

impl<V: Copy> RowScan<V> for Dcsr<V> {
    #[inline]
    fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    fn ncols(&self) -> Index {
        self.ncols
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.cols.len()
    }

    fn scan_rows(&self, mut f: impl FnMut(Index, &[Index], &[V])) {
        for (r, cols, vals) in self.iter_rows() {
            f(r, cols, vals);
        }
    }

    fn scan_row_range(&self, lo: Index, hi: Index, mut f: impl FnMut(Index, &[Index], &[V])) {
        // Binary search the stored-row bounds, then scan.
        let start = self.rows.partition_point(|&r| r < lo);
        let end = self.rows.partition_point(|&r| r < hi);
        for i in start..end {
            let (plo, phi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            f(self.rows[i], &self.cols[plo..phi], &self.vals[plo..phi]);
        }
    }
}

/// O(1) row access into a [`Dcsr`] via a dense row-position table (see
/// [`Dcsr::row_reader`]). Empty rows return empty slices.
#[derive(Debug)]
pub struct DcsrRowReader<'a, V> {
    d: &'a Dcsr<V>,
    pos: Vec<u32>,
}

impl<V: Copy> crate::RowRead<V> for DcsrRowReader<'_, V> {
    #[inline]
    fn nrows(&self) -> Index {
        self.d.nrows
    }

    #[inline]
    fn ncols(&self) -> Index {
        self.d.ncols
    }

    #[inline]
    fn row(&self, r: Index) -> (&[Index], &[V]) {
        let i = self.pos[r as usize];
        if i == u32::MAX {
            (&[], &[])
        } else {
            let lo = self.d.row_ptr[i as usize];
            let hi = self.d.row_ptr[i as usize + 1];
            (&self.d.cols[lo..hi], &self.d.vals[lo..hi])
        }
    }
}

impl<V: WireSize> WireSize for Dcsr<V> {
    /// Packed size: shape header + 4 B per stored row id + 8 B per compressed
    /// row pointer + 4 B per column index + value payload. For hypersparse
    /// blocks this is far below the CSR wire size — the reason the paper
    /// communicates update matrices in DCSR.
    fn wire_bytes(&self) -> u64 {
        16 + 4 * self.rows.len() as u64
            + 8 * self.row_ptr.len() as u64
            + 4 * self.cols.len() as u64
            + self.vals.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<V: WireEncode> WireEncode for Dcsr<V> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.nrows.wire_encode(out);
        self.ncols.wire_encode(out);
        self.rows.wire_encode(out);
        self.row_ptr.wire_encode(out);
        self.cols.wire_encode(out);
        self.vals.wire_encode(out);
    }
}

impl<V: WireDecode> WireDecode for Dcsr<V> {
    /// Decoding validates the DCSR invariants (strictly increasing stored
    /// row ids, strictly increasing compressed pointers) before
    /// constructing, so a corrupt stream errors instead of panicking later.
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nrows = Index::wire_decode(r)?;
        let ncols = Index::wire_decode(r)?;
        let rows = Vec::<Index>::wire_decode(r)?;
        let row_ptr = Vec::<usize>::wire_decode(r)?;
        let cols = Vec::<Index>::wire_decode(r)?;
        let vals = Vec::<V>::wire_decode(r)?;
        if row_ptr.len() != rows.len() + 1
            || cols.len() != vals.len()
            || row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&cols.len())
            || row_ptr.windows(2).any(|w| w[0] >= w[1])
            || rows.windows(2).any(|w| w[0] >= w[1])
            || rows.iter().any(|&i| i >= nrows)
            || cols.iter().any(|&c| c >= ncols)
        {
            return Err(WireError::Invalid("dcsr invariants"));
        }
        Ok(Self {
            nrows,
            ncols,
            rows,
            row_ptr,
            cols,
            vals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::U64Plus;

    fn t(r: Index, c: Index, v: u64) -> Triple<u64> {
        Triple::new(r, c, v)
    }

    fn sample() -> Dcsr<u64> {
        Dcsr::from_triples::<U64Plus>(
            1000,
            1000,
            vec![
                t(999, 3, 14),
                t(0, 0, 10),
                t(999, 0, 12),
                t(0, 2, 11),
                t(500, 1, 13),
            ],
        )
    }

    #[test]
    fn construction_hypersparse() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.nrows_stored(), 3);
        let rows: Vec<_> = m.iter_rows().map(|(r, c, _)| (r, c.len())).collect();
        assert_eq!(rows, vec![(0, 2), (500, 1), (999, 2)]);
        m.validate().unwrap();
    }

    #[test]
    fn triples_roundtrip() {
        let m = sample();
        let back = Dcsr::from_sorted_triples(1000, 1000, &m.to_triples());
        assert_eq!(m, back);
    }

    #[test]
    fn duplicates_combine() {
        let m = Dcsr::from_triples::<U64Plus>(10, 10, vec![t(3, 3, 1), t(3, 3, 2)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_triples(), vec![t(3, 3, 3)]);
    }

    #[test]
    fn transpose_matches_canonical_flipped_build() {
        // The bit-identity lemma of the virtual-transposition path: a local
        // counting-sort transpose of a canonical block equals the canonical
        // build over the flipped entry set (what a physically exchanged
        // transposed block would contain).
        let m = sample();
        let mut flipped: Vec<Triple<u64>> = m
            .to_triples()
            .into_iter()
            .map(|t| Triple::new(t.col, t.row, t.val))
            .collect();
        triple::sort_row_major(&mut flipped);
        let reference = Dcsr::from_sorted_triples(1000, 1000, &flipped);
        assert_eq!(m.transpose(), reference);
    }

    #[test]
    fn transpose_involution_and_reuse() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        let e: Dcsr<u64> = Dcsr::empty(7, 3);
        assert_eq!(e.transpose().nrows(), 3);
        assert_eq!(e.transpose().nnz(), 0);
        // Pooled cycle: recycle the output, heap must not regrow.
        let mut ws = TransposeWorkspace::new();
        let t = m.transpose_into(&mut ws);
        t.recycle_into(&mut ws);
        let steady = ws.heap_bytes();
        for _ in 0..3 {
            let t = m.transpose_into(&mut ws);
            assert_eq!(t, m.transpose());
            t.recycle_into(&mut ws);
            assert_eq!(ws.heap_bytes(), steady, "workspace heap must not regrow");
        }
    }

    #[test]
    fn transpose_non_square_shapes() {
        let m = Dcsr::from_triples::<U64Plus>(4, 9, vec![t(0, 8, 1), t(3, 0, 2), t(3, 8, 3)]);
        let tr = m.transpose();
        assert_eq!((tr.nrows(), tr.ncols()), (9, 4));
        assert_eq!(tr.to_triples(), vec![t(0, 3, 2), t(8, 0, 1), t(8, 3, 3)]);
        tr.validate().unwrap();
    }

    #[test]
    fn merge_add_disjoint_and_overlapping() {
        let a = Dcsr::from_triples::<U64Plus>(10, 10, vec![t(1, 1, 1), t(2, 1, 2), t(2, 3, 3)]);
        let b = Dcsr::from_triples::<U64Plus>(10, 10, vec![t(0, 5, 7), t(2, 1, 10), t(2, 2, 4)]);
        let m = Dcsr::merge_add::<U64Plus>(&a, &b);
        assert_eq!(
            m.to_triples(),
            vec![t(0, 5, 7), t(1, 1, 1), t(2, 1, 12), t(2, 2, 4), t(2, 3, 3)]
        );
        m.validate().unwrap();
    }

    #[test]
    fn merge_with_empty() {
        let a = sample();
        let e = Dcsr::empty(1000, 1000);
        assert_eq!(Dcsr::merge_add::<U64Plus>(&a, &e), a);
        assert_eq!(Dcsr::merge_add::<U64Plus>(&e, &a), a);
        assert_eq!(Dcsr::merge_add::<U64Plus>(&e, &e).nnz(), 0);
    }

    #[test]
    fn merge_is_commutative_for_add() {
        let a = Dcsr::from_triples::<U64Plus>(8, 8, vec![t(0, 0, 1), t(5, 7, 2), t(7, 0, 3)]);
        let b = Dcsr::from_triples::<U64Plus>(8, 8, vec![t(0, 0, 9), t(5, 6, 5)]);
        assert_eq!(
            Dcsr::merge_add::<U64Plus>(&a, &b),
            Dcsr::merge_add::<U64Plus>(&b, &a)
        );
    }

    #[test]
    fn map_preserves_pattern() {
        let m = sample();
        let mapped = m.map(|v| v * 2);
        assert_eq!(mapped.nnz(), m.nnz());
        assert_eq!(mapped.to_triples()[0].val, m.to_triples()[0].val * 2);
    }

    #[test]
    fn scan_row_range_bounds() {
        let m = sample();
        let mut rows = vec![];
        m.scan_row_range(1, 999, |r, _, _| rows.push(r));
        assert_eq!(rows, vec![500]);
        rows.clear();
        m.scan_row_range(0, 1000, |r, _, _| rows.push(r));
        assert_eq!(rows, vec![0, 500, 999]);
    }

    #[test]
    fn wire_size_beats_csr_for_hypersparse() {
        use crate::csr::Csr;
        let triples: Vec<Triple<u64>> = (0..10).map(|i| t(i * 100, 0, 1)).collect();
        let d = Dcsr::from_sorted_triples(1000, 1000, &triples);
        let c = Csr::from_sorted_triples(1000, 1000, &triples);
        assert!(
            d.wire_bytes() * 4 < c.wire_bytes(),
            "dcsr {} vs csr {}",
            d.wire_bytes(),
            c.wire_bytes()
        );
    }

    #[test]
    fn push_row_entry_same_row_accumulates_run() {
        let mut m: Dcsr<u64> = Dcsr::empty(5, 5);
        m.push_row_entry(1, 0, 10);
        m.push_row_entry(1, 3, 11);
        m.push_row_entry(4, 2, 12);
        assert_eq!(m.nrows_stored(), 2);
        assert_eq!(m.nnz(), 3);
        m.validate().unwrap();
    }

    #[test]
    fn from_parts_and_append_flat_roundtrip() {
        let m = sample();
        // Rebuild via from_parts from the flat form of the sample.
        let mut rows = Vec::new();
        let mut row_ptr = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for (r, cs, vs) in m.iter_rows() {
            rows.push(r);
            cols.extend_from_slice(cs);
            vals.extend_from_slice(vs);
            row_ptr.push(cols.len());
        }
        let rebuilt = Dcsr::from_parts(1000, 1000, rows, row_ptr, cols, vals);
        assert_eq!(rebuilt, m);
        // Rebuild again by appending two flat chunks (split after row 0).
        let mut appended = Dcsr::with_capacity(1000, 1000, 3, 5);
        appended.append_rows_flat(&[0], &[0, 2], &[0, 2], &[10, 11]);
        appended.append_rows_flat(&[], &[0], &[], &[]); // empty part is a no-op
        appended.append_rows_flat(&[500, 999], &[0, 1, 3], &[1, 0, 3], &[13, 12, 14]);
        assert_eq!(appended, m);
        appended.validate().unwrap();
    }

    #[test]
    fn validate_catches_corruption() {
        let mut m = sample();
        // Manually corrupt: out-of-range column.
        m.cols[0] = 5000;
        assert!(m.validate().is_err());
    }
}
