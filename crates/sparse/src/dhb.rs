//! DHB-style dynamic sparse matrix storage.
//!
//! The paper stores dynamic matrices in the DHB data structure (reference
//! \[27\]): one *adjacency array* per row holding `(column, value)` entries,
//! plus — for sufficiently heavy rows — a per-row hash table mapping column
//! index → position in the adjacency array. This gives:
//!
//! * expected **O(1)** lookup, insert, value update and delete of a non-zero;
//! * cache-friendly row iteration (plain array scans) for SpGEMM;
//! * no global rebuilds — the property that makes batch updates so much
//!   cheaper than the rebuild-on-update strategy of the static competitors.
//!
//! Light rows (degree < [`INDEX_THRESHOLD`]) skip the hash table: a linear
//! scan of ≤ 8 entries beats hashing and saves memory on the long tail of
//! low-degree vertices in skewed graphs.

use crate::semiring::Semiring;
use crate::triple::Triple;
use crate::{Index, RowRead, RowScan};
use dspgemm_util::hash::mix64;

/// Row degree at which a per-row hash index is built.
pub const INDEX_THRESHOLD: usize = 8;

/// Hash-table load factor limit (× 100).
const MAX_LOAD_PERCENT: usize = 70;

const EMPTY: Index = Index::MAX;

/// Per-row open-addressing hash index: column → slot in the adjacency array.
/// Linear probing, power-of-two capacity, back-shift deletion (no
/// tombstones).
#[derive(Debug, Clone, Default)]
struct RowIndex {
    /// `(col, slot)`; `col == EMPTY` marks a free bucket.
    table: Vec<(Index, u32)>,
    len: usize,
}

impl RowIndex {
    fn with_capacity_for(entries: usize) -> Self {
        let cap = (entries * 100 / MAX_LOAD_PERCENT + 1)
            .next_power_of_two()
            .max(16);
        Self {
            table: vec![(EMPTY, 0); cap],
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.table.len() - 1
    }

    #[inline]
    fn bucket_of(&self, col: Index) -> usize {
        mix64(col as u64) as usize & self.mask()
    }

    fn find(&self, col: Index) -> Option<u32> {
        let mask = self.mask();
        let mut b = self.bucket_of(col);
        loop {
            let (c, slot) = self.table[b];
            if c == col {
                return Some(slot);
            }
            if c == EMPTY {
                return None;
            }
            b = (b + 1) & mask;
        }
    }

    /// Inserts a mapping; `col` must not be present.
    fn insert(&mut self, col: Index, slot: u32) {
        if (self.len + 1) * 100 > self.table.len() * MAX_LOAD_PERCENT {
            self.grow();
        }
        let mask = self.mask();
        let mut b = self.bucket_of(col);
        loop {
            if self.table[b].0 == EMPTY {
                self.table[b] = (col, slot);
                self.len += 1;
                return;
            }
            debug_assert_ne!(self.table[b].0, col, "duplicate insert");
            b = (b + 1) & mask;
        }
    }

    /// Updates the slot of an existing mapping (after a swap-remove moved an
    /// entry within the adjacency array).
    fn update_slot(&mut self, col: Index, slot: u32) {
        let mask = self.mask();
        let mut b = self.bucket_of(col);
        loop {
            if self.table[b].0 == col {
                self.table[b].1 = slot;
                return;
            }
            debug_assert_ne!(self.table[b].0, EMPTY, "update of missing column");
            b = (b + 1) & mask;
        }
    }

    /// Removes a mapping with back-shift compaction of the probe cluster.
    fn remove(&mut self, col: Index) {
        let mask = self.mask();
        let mut i = self.bucket_of(col);
        loop {
            if self.table[i].0 == col {
                break;
            }
            debug_assert_ne!(self.table[i].0, EMPTY, "remove of missing column");
            i = (i + 1) & mask;
        }
        self.len -= 1;
        // Back-shift: close the hole without tombstones.
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let (cj, _) = self.table[j];
            if cj == EMPTY {
                self.table[i] = (EMPTY, 0);
                return;
            }
            let k = mix64(cj as u64) as usize & mask;
            // Move table[j] into the hole unless its ideal bucket k lies
            // cyclically within (i, j] — in that case it must stay.
            let stays = if j > i {
                k > i && k <= j
            } else {
                k > i || k <= j
            };
            if !stays {
                self.table[i] = self.table[j];
                i = j;
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.table.len() * 2).max(16);
        let old = std::mem::replace(&mut self.table, vec![(EMPTY, 0); new_cap]);
        self.len = 0;
        for (c, s) in old {
            if c != EMPTY {
                self.insert(c, s);
            }
        }
    }
}

/// One row of a [`DhbMatrix`]: an adjacency array (parallel `cols`/`vals`)
/// plus an optional hash index for heavy rows.
#[derive(Debug, Clone)]
pub struct DhbRow<V> {
    cols: Vec<Index>,
    vals: Vec<V>,
    index: Option<RowIndex>,
}

impl<V> Default for DhbRow<V> {
    fn default() -> Self {
        Self {
            cols: Vec::new(),
            vals: Vec::new(),
            index: None,
        }
    }
}

impl<V: Copy> DhbRow<V> {
    /// Number of non-zeros in the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the row has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The row's entries as parallel `(cols, vals)` slices (insertion order).
    #[inline]
    pub fn entries(&self) -> (&[Index], &[V]) {
        (&self.cols, &self.vals)
    }

    /// Position of `col` in the adjacency array, if present. Expected O(1).
    #[inline]
    pub fn find(&self, col: Index) -> Option<usize> {
        match &self.index {
            Some(idx) => idx.find(col).map(|s| s as usize),
            None => self.cols.iter().position(|&c| c == col),
        }
    }

    /// The value at `col`, if present.
    #[inline]
    pub fn get(&self, col: Index) -> Option<V> {
        self.find(col).map(|i| self.vals[i])
    }

    fn maybe_build_index(&mut self) {
        if self.index.is_none() && self.cols.len() >= INDEX_THRESHOLD {
            let mut idx = RowIndex::with_capacity_for(self.cols.len());
            for (slot, &c) in self.cols.iter().enumerate() {
                idx.insert(c, slot as u32);
            }
            self.index = Some(idx);
        }
    }

    fn push_new(&mut self, col: Index, val: V) {
        let slot = self.cols.len() as u32;
        self.cols.push(col);
        self.vals.push(val);
        if let Some(idx) = &mut self.index {
            idx.insert(col, slot);
        } else {
            self.maybe_build_index();
        }
    }

    /// Sets `col` to `val`, inserting if absent (MERGE semantics). Returns
    /// `true` if the entry is new.
    pub fn set(&mut self, col: Index, val: V) -> bool {
        match self.find(col) {
            Some(i) => {
                self.vals[i] = val;
                false
            }
            None => {
                self.push_new(col, val);
                true
            }
        }
    }

    /// Combines `val` into `col` with `combine(old, new)`, inserting `val`
    /// if absent (matrix-addition semantics). Returns `true` if new.
    pub fn combine(&mut self, col: Index, val: V, combine: impl FnOnce(V, V) -> V) -> bool {
        match self.find(col) {
            Some(i) => {
                self.vals[i] = combine(self.vals[i], val);
                false
            }
            None => {
                self.push_new(col, val);
                true
            }
        }
    }

    /// Bulk-extends an **empty** row with column-sorted, duplicate-free
    /// entries, building the hash index once at the end — the fast path for
    /// matrix construction (one reservation, no incremental index growth).
    /// Falls back to per-entry [`DhbRow::set`] if the row is non-empty.
    pub fn fill_sorted(&mut self, cols: &[Index], vals: &[V]) {
        debug_assert_eq!(cols.len(), vals.len());
        if !self.is_empty() {
            for (&c, &v) in cols.iter().zip(vals) {
                self.set(c, v);
            }
            return;
        }
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "sorted + dedup required"
        );
        self.cols.reserve_exact(cols.len());
        self.vals.reserve_exact(vals.len());
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
        self.maybe_build_index();
    }

    /// Removes `col` (MASK semantics). Returns the removed value, if any.
    /// Expected O(1): swap-remove in the adjacency array + hash fix-up.
    pub fn remove(&mut self, col: Index) -> Option<V> {
        let i = self.find(col)?;
        let val = self.vals[i];
        self.cols.swap_remove(i);
        self.vals.swap_remove(i);
        if let Some(idx) = &mut self.index {
            idx.remove(col);
            if i < self.cols.len() {
                // The former last entry moved into slot i.
                idx.update_slot(self.cols[i], i as u32);
            }
        }
        Some(val)
    }

    /// Approximate heap bytes used by this row (adjacency + index).
    pub fn heap_bytes(&self) -> usize {
        self.cols.capacity() * std::mem::size_of::<Index>()
            + self.vals.capacity() * std::mem::size_of::<V>()
            + self.index.as_ref().map_or(0, |i| {
                i.table.capacity() * std::mem::size_of::<(Index, u32)>()
            })
    }
}

/// A dynamic sparse matrix: one [`DhbRow`] per row.
///
/// This is the storage for every *dynamic* matrix in the framework — local
/// blocks of distributed adjacency matrices and of SpGEMM results `C'`.
#[derive(Debug, Clone)]
pub struct DhbMatrix<V> {
    nrows: Index,
    ncols: Index,
    rows: Vec<DhbRow<V>>,
    nnz: usize,
}

impl<V: Copy> DhbMatrix<V> {
    /// An empty dynamic matrix of the given shape.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self {
            nrows,
            ncols,
            rows: (0..nrows).map(|_| DhbRow::default()).collect(),
            nnz: 0,
        }
    }

    /// Builds from triples (arbitrary order); duplicate keys keep the last
    /// value.
    pub fn from_triples(nrows: Index, ncols: Index, triples: &[Triple<V>]) -> Self {
        let mut m = Self::new(nrows, ncols);
        for t in triples {
            m.set(t.row, t.col, t.val);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of structural non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The value at `(r, c)`, if present. Expected O(1).
    #[inline]
    pub fn get(&self, r: Index, c: Index) -> Option<V> {
        self.rows[r as usize].get(c)
    }

    /// Sets `(r, c)` to `val` (insert-or-assign / MERGE). Returns `true` if
    /// the entry is new.
    pub fn set(&mut self, r: Index, c: Index, val: V) -> bool {
        debug_assert!(r < self.nrows && c < self.ncols, "index out of range");
        let new = self.rows[r as usize].set(c, val);
        self.nnz += usize::from(new);
        new
    }

    /// Combines `val` into `(r, c)` with the semiring addition, inserting if
    /// absent (matrix addition `A += A*`). Returns `true` if new.
    pub fn add_entry<S: Semiring<Elem = V>>(&mut self, r: Index, c: Index, val: V) -> bool {
        debug_assert!(r < self.nrows && c < self.ncols, "index out of range");
        let new = self.rows[r as usize].combine(c, val, S::add);
        self.nnz += usize::from(new);
        new
    }

    /// Combines `val` into `(r, c)` with an arbitrary operator, inserting if
    /// absent (e.g. bitwise-OR for Bloom filter matrices). Returns `true`
    /// if new.
    pub fn combine_entry(
        &mut self,
        r: Index,
        c: Index,
        val: V,
        combine: impl FnOnce(V, V) -> V,
    ) -> bool {
        debug_assert!(r < self.nrows && c < self.ncols, "index out of range");
        let new = self.rows[r as usize].combine(c, val, combine);
        self.nnz += usize::from(new);
        new
    }

    /// Removes `(r, c)` (MASK). Returns the removed value, if any.
    pub fn remove(&mut self, r: Index, c: Index) -> Option<V> {
        let old = self.rows[r as usize].remove(c);
        self.nnz -= usize::from(old.is_some());
        old
    }

    /// Read access to a row.
    #[inline]
    pub fn row_ref(&self, r: Index) -> &DhbRow<V> {
        &self.rows[r as usize]
    }

    /// Distributes mutable row references into `shards` groups by
    /// `row % shards` — the paper's `(i mod T)` partitioning that lets `T`
    /// threads apply a pre-grouped update batch without synchronization.
    /// `out[t][k]` is row `t + k·shards`. The caller regains `&mut self`
    /// (and must then call [`DhbMatrix::recount_nnz`]) once the borrows end.
    pub fn shard_rows_mut(&mut self, shards: usize) -> Vec<Vec<&mut DhbRow<V>>> {
        let mut out: Vec<Vec<&mut DhbRow<V>>> = (0..shards)
            .map(|_| Vec::with_capacity(self.rows.len() / shards + 1))
            .collect();
        for (i, row) in self.rows.iter_mut().enumerate() {
            out[i % shards].push(row);
        }
        out
    }

    /// Recomputes the cached nnz after direct row mutation via
    /// [`DhbMatrix::shard_rows_mut`].
    pub fn recount_nnz(&mut self) {
        self.nnz = self.rows.iter().map(DhbRow::len).sum();
    }

    /// All entries as row-major, column-sorted triples.
    pub fn to_sorted_triples(&self) -> Vec<Triple<V>> {
        let mut out = Vec::with_capacity(self.nnz);
        for (r, row) in self.rows.iter().enumerate() {
            let start = out.len();
            let (cols, vals) = row.entries();
            for (&c, &v) in cols.iter().zip(vals) {
                out.push(Triple::new(r as Index, c, v));
            }
            out[start..].sort_unstable_by_key(|t| t.col);
        }
        out
    }

    /// Converts to CSR (column-sorted rows).
    pub fn to_csr(&self) -> crate::csr::Csr<V> {
        crate::csr::Csr::from_sorted_triples(self.nrows, self.ncols, &self.to_sorted_triples())
    }

    /// Converts to DCSR (column-sorted rows).
    pub fn to_dcsr(&self) -> crate::dcsr::Dcsr<V> {
        crate::dcsr::Dcsr::from_sorted_triples(self.nrows, self.ncols, &self.to_sorted_triples())
    }

    /// Approximate heap bytes (adjacency arrays + hash indices).
    pub fn heap_bytes(&self) -> usize {
        self.rows.iter().map(DhbRow::heap_bytes).sum::<usize>()
            + self.rows.capacity() * std::mem::size_of::<DhbRow<V>>()
    }
}

impl<V: Copy> RowRead<V> for DhbMatrix<V> {
    #[inline]
    fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    fn ncols(&self) -> Index {
        self.ncols
    }

    #[inline]
    fn row(&self, r: Index) -> (&[Index], &[V]) {
        self.rows[r as usize].entries()
    }
}

impl<V: Copy> RowScan<V> for DhbMatrix<V> {
    #[inline]
    fn nrows(&self) -> Index {
        self.nrows
    }

    #[inline]
    fn ncols(&self) -> Index {
        self.ncols
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.nnz
    }

    fn scan_rows(&self, mut f: impl FnMut(Index, &[Index], &[V])) {
        for (r, row) in self.rows.iter().enumerate() {
            if !row.is_empty() {
                let (cols, vals) = row.entries();
                f(r as Index, cols, vals);
            }
        }
    }

    fn scan_row_range(&self, lo: Index, hi: Index, mut f: impl FnMut(Index, &[Index], &[V])) {
        for r in lo..hi {
            let row = &self.rows[r as usize];
            if !row.is_empty() {
                let (cols, vals) = row.entries();
                f(r, cols, vals);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::U64Plus;
    use dspgemm_util::rng::{Rng, SplitMix64};
    use std::collections::BTreeMap;

    #[test]
    fn set_get_remove_small_row() {
        let mut m: DhbMatrix<u64> = DhbMatrix::new(4, 4);
        assert!(m.set(1, 2, 10));
        assert!(!m.set(1, 2, 20), "overwrite is not new");
        assert_eq!(m.get(1, 2), Some(20));
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.remove(1, 2), Some(20));
        assert_eq!(m.remove(1, 2), None);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn add_entry_combines() {
        let mut m: DhbMatrix<u64> = DhbMatrix::new(2, 2);
        m.add_entry::<U64Plus>(0, 0, 5);
        m.add_entry::<U64Plus>(0, 0, 7);
        assert_eq!(m.get(0, 0), Some(12));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn index_kicks_in_beyond_threshold() {
        let mut row: DhbRow<u64> = DhbRow::default();
        for c in 0..INDEX_THRESHOLD as Index {
            row.set(c, c as u64);
        }
        assert!(row.index.is_some(), "index built at threshold");
        for c in 0..INDEX_THRESHOLD as Index {
            assert_eq!(row.get(c), Some(c as u64));
        }
    }

    #[test]
    fn heavy_row_operations() {
        let mut row: DhbRow<u64> = DhbRow::default();
        for c in 0..10_000 {
            assert!(row.set(c, c as u64 * 3));
        }
        assert_eq!(row.len(), 10_000);
        for c in (0..10_000).step_by(7) {
            assert_eq!(row.get(c), Some(c as u64 * 3));
        }
        // Remove every third entry.
        for c in (0..10_000).step_by(3) {
            assert_eq!(row.remove(c), Some(c as u64 * 3));
        }
        for c in 0..10_000 {
            if c % 3 == 0 {
                assert_eq!(row.get(c), None);
            } else {
                assert_eq!(row.get(c), Some(c as u64 * 3));
            }
        }
    }

    #[test]
    fn random_ops_match_btreemap_model() {
        let mut rng = SplitMix64::new(2024);
        let mut dhb: DhbMatrix<u64> = DhbMatrix::new(64, 64);
        let mut model: BTreeMap<(Index, Index), u64> = BTreeMap::new();
        for step in 0..50_000 {
            let r = rng.gen_range(64) as Index;
            let c = rng.gen_range(64) as Index;
            match rng.gen_range(4) {
                0 => {
                    let v = rng.next_u64();
                    dhb.set(r, c, v);
                    model.insert((r, c), v);
                }
                1 => {
                    let v = rng.gen_range(1000);
                    dhb.add_entry::<U64Plus>(r, c, v);
                    *model.entry((r, c)).or_insert(0) += v;
                }
                2 => {
                    let a = dhb.remove(r, c);
                    let b = model.remove(&(r, c));
                    assert_eq!(a, b, "remove mismatch at step {step}");
                }
                _ => {
                    assert_eq!(dhb.get(r, c), model.get(&(r, c)).copied());
                }
            }
            assert_eq!(dhb.nnz(), model.len(), "nnz drift at step {step}");
        }
        // Final full comparison via sorted triples.
        let triples: Vec<((Index, Index), u64)> = dhb
            .to_sorted_triples()
            .into_iter()
            .map(|t| ((t.row, t.col), t.val))
            .collect();
        let expect: Vec<((Index, Index), u64)> = model.into_iter().collect();
        assert_eq!(triples, expect);
    }

    #[test]
    fn shard_rows_mut_partitions_by_modulo() {
        let mut m: DhbMatrix<u64> = DhbMatrix::new(10, 10);
        {
            let mut shards = m.shard_rows_mut(3);
            assert_eq!(shards[0].len(), 4); // rows 0,3,6,9
            assert_eq!(shards[1].len(), 3); // rows 1,4,7
            assert_eq!(shards[2].len(), 3); // rows 2,5,8
                                            // Mutate through the shards: set (r, 0) = r for every row.
            for (t, shard) in shards.iter_mut().enumerate() {
                for (k, row) in shard.iter_mut().enumerate() {
                    let r = (t + k * 3) as u64;
                    row.set(0, r);
                }
            }
        }
        m.recount_nnz();
        assert_eq!(m.nnz(), 10);
        for r in 0..10 {
            assert_eq!(m.get(r, 0), Some(r as u64));
        }
    }

    #[test]
    fn conversions_sorted() {
        let mut m: DhbMatrix<u64> = DhbMatrix::new(4, 4);
        m.set(2, 3, 1);
        m.set(2, 0, 2);
        m.set(0, 1, 3);
        let t = m.to_sorted_triples();
        assert_eq!(
            t,
            vec![
                Triple::new(0, 1, 3),
                Triple::new(2, 0, 2),
                Triple::new(2, 3, 1)
            ]
        );
        assert_eq!(m.to_csr().nnz(), 3);
        m.to_dcsr().validate().unwrap();
    }

    #[test]
    fn row_read_trait_unordered() {
        let mut m: DhbMatrix<u64> = DhbMatrix::new(2, 8);
        m.set(0, 5, 1);
        m.set(0, 2, 2);
        let (cols, vals) = RowRead::row(&m, 0);
        assert_eq!(cols.len(), 2);
        assert_eq!(vals.len(), 2);
        let mut pairs: Vec<(Index, u64)> = cols.iter().copied().zip(vals.iter().copied()).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(2, 2), (5, 1)]);
    }

    #[test]
    fn heap_bytes_positive_and_grows() {
        let mut m: DhbMatrix<u64> = DhbMatrix::new(8, 1024);
        let before = m.heap_bytes();
        for c in 0..1024 {
            m.set(3, c, 1);
        }
        assert!(m.heap_bytes() > before);
    }

    #[test]
    fn backshift_deletion_stress() {
        // Force many collisions then delete in adversarial order to exercise
        // the back-shift path.
        let mut row: DhbRow<u64> = DhbRow::default();
        let cols: Vec<Index> = (0..2000).map(|i| i * 64).collect();
        for &c in &cols {
            row.set(c, c as u64);
        }
        for &c in cols.iter().rev() {
            assert_eq!(row.remove(c), Some(c as u64));
            // All remaining entries must stay findable.
            if c % 640 == 0 {
                for &c2 in cols.iter().filter(|&&c2| c2 < c) {
                    assert_eq!(row.get(c2), Some(c2 as u64), "lost {c2} after removing {c}");
                }
            }
        }
        assert!(row.is_empty());
    }
}
