//! Pooled per-thread kernel workspaces.
//!
//! Every local multiply used to build a fresh accumulator (`Spa::for_width`
//! — an O(ncols) dense scratch per worker) and fresh flat output buffers per
//! call; under SUMMA and the dynamic algorithms that is one full set of
//! allocations *per round per worker*. A [`KernelWorkspace`] bundles all of
//! a worker's reusable state — the dense SPA scratch (lazily sized), the
//! hash SPA, its sort scratch, and the flat `(rows, row_ptr, cols, vals)`
//! output buffers — and a [`WorkspacePool`] leases workspaces per kernel
//! call, so pipelined rounds, dynamic X/Y passes, masked recomputes and
//! analytics refreshes stop reallocating.
//!
//! Lifecycle: a worker leases a workspace for the duration of its range,
//! accumulates rows through the per-row dense-vs-hash choice
//! ([`crate::spa::dense_row_profitable`]), and the drained flat buffers
//! leave as the range's output. When the lease drops, the SPA state returns
//! to the pool; when a multi-range assembly has *copied* the flat parts into
//! the result, their capacity returns too (`WorkspacePool::put_flat`).
//! The single-range fast path instead *moves* its buffers into the result
//! `Dcsr` (zero-copy wins over reuse there).
//!
//! Pools are `Sync` (a mutex-guarded stash): concurrent workers lease
//! distinct workspaces, and a pool leased from `T` threads converges to `T`
//! stashed workspaces whose capacities stop growing once the workload's
//! high-water marks are reached — the invariant pinned by the
//! workspace-reuse regression test via [`WorkspacePool::heap_bytes`].

use crate::local_mm::FlatRows;
use crate::spa::{DenseSpa, HashSpa};
use crate::Index;
use std::sync::Mutex;

/// Which accumulator the current row scatters into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Active {
    Dense,
    Hash,
}

/// One worker thread's reusable kernel state: both SPA strategies plus the
/// flat output buffers.
#[derive(Debug)]
pub struct KernelWorkspace<A> {
    dense: DenseSpa<A>,
    hash: HashSpa<A>,
    active: Active,
    pub(crate) out: FlatRows<A>,
}

impl<A: Copy> KernelWorkspace<A> {
    /// A fresh workspace with no heap behind it yet.
    pub fn new() -> Self {
        Self {
            dense: DenseSpa::unsized_new(),
            hash: HashSpa::new(),
            active: Active::Hash,
            out: FlatRows::new(),
        }
    }

    /// Starts a new output row: picks the dense or hash accumulator from the
    /// row's flop upper bound (see [`crate::spa::dense_row_profitable`]) and
    /// sizes the dense scratch on first dense use.
    #[inline]
    pub(crate) fn begin_row(&mut self, ncols: Index, est_flops: u64) {
        if crate::spa::dense_row_profitable(ncols, est_flops) {
            self.dense.ensure_width(ncols);
            self.active = Active::Dense;
        } else {
            self.active = Active::Hash;
        }
    }

    /// Scatters into the accumulator selected by [`KernelWorkspace::begin_row`].
    #[inline]
    pub(crate) fn scatter(&mut self, col: Index, value: A, combine: impl FnOnce(A, A) -> A) {
        match self.active {
            Active::Dense => self.dense.scatter(col, value, combine),
            Active::Hash => self.hash.scatter(col, value, combine),
        }
    }

    /// Ends the current row: if anything accumulated, drains it
    /// (column-sorted) into the flat output buffers and seals the row.
    #[inline]
    pub(crate) fn finish_row(&mut self, row: Index) {
        match self.active {
            Active::Dense => {
                if self.dense.is_empty() {
                    return;
                }
                self.dense
                    .drain_sorted_split(&mut self.out.cols, &mut self.out.vals);
            }
            Active::Hash => {
                if self.hash.is_empty() {
                    return;
                }
                self.hash
                    .drain_sorted_split(&mut self.out.cols, &mut self.out.vals);
            }
        }
        self.out.seal_row(row);
    }

    /// Reserves flat output capacity for up to `entries` more non-zeros —
    /// callers pass the range's flop upper bound so pooled buffers reach
    /// their high-water mark in one step instead of doubling up to it.
    pub(crate) fn reserve_out(&mut self, entries: usize) {
        self.out.cols.reserve(entries);
        self.out.vals.reserve(entries);
    }

    /// Moves the accumulated flat output out of the workspace, leaving empty
    /// (capacity-free) buffers behind. The SPA state stays for reuse.
    pub(crate) fn take_out(&mut self) -> FlatRows<A> {
        std::mem::replace(&mut self.out, FlatRows::new())
    }

    /// Bytes of heap currently held (capacity-based): the monotone-then-flat
    /// signal of the workspace-reuse regression tests.
    pub fn heap_bytes(&self) -> usize {
        self.dense.heap_bytes() + self.hash.heap_bytes() + self.out.heap_bytes()
    }
}

impl<A: Copy> Default for KernelWorkspace<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// A stash of [`KernelWorkspace`]s leased per kernel call (plus recycled
/// flat output buffers from multi-range assemblies).
#[derive(Debug, Default)]
pub struct WorkspacePool<A> {
    stash: Mutex<Vec<KernelWorkspace<A>>>,
    flats: Mutex<Vec<FlatRows<A>>>,
}

impl<A: Copy> WorkspacePool<A> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            stash: Mutex::new(Vec::new()),
            flats: Mutex::new(Vec::new()),
        }
    }

    /// Leases a workspace: pops a stashed one (topping its output buffers up
    /// from the recycled-flat stash if they were moved out) or builds a
    /// fresh one. The workspace returns on drop of the lease.
    pub fn lease(&self) -> WorkspaceLease<'_, A> {
        let mut ws = self
            .stash
            .lock()
            .expect("workspace stash poisoned")
            .pop()
            .unwrap_or_default();
        if ws.out.cols.capacity() == 0 {
            if let Some(flat) = self.flats.lock().expect("flat stash poisoned").pop() {
                ws.out = flat;
            }
        }
        WorkspaceLease {
            ws: Some(ws),
            pool: self,
        }
    }

    /// Returns a drained flat-output buffer set to the pool (cleared, its
    /// capacity kept) — called by multi-range assembly after copying a
    /// part's rows into the result.
    pub(crate) fn put_flat(&self, mut flat: FlatRows<A>) {
        flat.clear();
        self.flats.lock().expect("flat stash poisoned").push(flat);
    }

    /// Number of stashed (idle) workspaces.
    pub fn stashed(&self) -> usize {
        self.stash.lock().expect("workspace stash poisoned").len()
    }

    /// Total heap bytes held by the pool's idle workspaces and recycled flat
    /// buffers. Stable across repeated identical kernel calls once the
    /// high-water capacities are reached — the workspace-reuse regression
    /// signal.
    pub fn heap_bytes(&self) -> usize {
        let ws: usize = self
            .stash
            .lock()
            .expect("workspace stash poisoned")
            .iter()
            .map(KernelWorkspace::heap_bytes)
            .sum();
        let fl: usize = self
            .flats
            .lock()
            .expect("flat stash poisoned")
            .iter()
            .map(FlatRows::heap_bytes)
            .sum();
        ws + fl
    }
}

/// Reusable scratch for counting-sort transposition
/// ([`crate::Csr::transpose_into`] / [`crate::Dcsr::transpose_into`]).
///
/// Transposition needs an `O(ncols)` counter/cursor array plus fresh output
/// storage; under the virtual-transposition round structure that is one full
/// set of allocations per round. This workspace keeps the counter scratch
/// across calls and recycles output buffers handed back through the
/// `recycle_into` methods, so steady-state transposes allocate nothing once
/// the high-water capacities are reached.
#[derive(Debug)]
pub struct TransposeWorkspace<V> {
    /// Per-output-row counter/cursor scratch (regrown lazily, never shrunk).
    pub(crate) counts: Vec<usize>,
    /// Recycled output buffers (returned via `Csr::recycle_into` /
    /// `Dcsr::recycle_into` when the caller owns the result exclusively).
    pub(crate) spare_row_ptr: Vec<usize>,
    pub(crate) spare_rows: Vec<Index>,
    pub(crate) spare_cols: Vec<Index>,
    pub(crate) spare_vals: Vec<V>,
}

impl<V> Default for TransposeWorkspace<V> {
    fn default() -> Self {
        Self {
            counts: Vec::new(),
            spare_row_ptr: Vec::new(),
            spare_rows: Vec::new(),
            spare_cols: Vec::new(),
            spare_vals: Vec::new(),
        }
    }
}

impl<V: Copy> TransposeWorkspace<V> {
    /// A fresh workspace with no heap behind it yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of heap currently held (capacity-based) — the
    /// monotone-then-flat signal of the transpose-reuse regression tests.
    pub fn heap_bytes(&self) -> usize {
        (self.counts.capacity() + self.spare_row_ptr.capacity()) * std::mem::size_of::<usize>()
            + (self.spare_rows.capacity() + self.spare_cols.capacity())
                * std::mem::size_of::<Index>()
            + self.spare_vals.capacity() * std::mem::size_of::<V>()
    }
}

/// A stash of [`TransposeWorkspace`]s leased per transpose call, mirroring
/// [`WorkspacePool`]: concurrent callers lease distinct workspaces and the
/// stash converges to the caller count with stable capacities.
#[derive(Debug, Default)]
pub struct TransposePool<V> {
    stash: Mutex<Vec<TransposeWorkspace<V>>>,
}

impl<V: Copy> TransposePool<V> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            stash: Mutex::new(Vec::new()),
        }
    }

    /// Leases a workspace: pops a stashed one or builds a fresh one. The
    /// workspace returns on drop of the lease.
    pub fn lease(&self) -> TransposeLease<'_, V> {
        let ws = self
            .stash
            .lock()
            .expect("transpose stash poisoned")
            .pop()
            .unwrap_or_default();
        TransposeLease {
            ws: Some(ws),
            pool: self,
        }
    }

    /// Number of stashed (idle) workspaces.
    pub fn stashed(&self) -> usize {
        self.stash.lock().expect("transpose stash poisoned").len()
    }

    /// Total heap bytes held by the pool's idle workspaces.
    pub fn heap_bytes(&self) -> usize {
        self.stash
            .lock()
            .expect("transpose stash poisoned")
            .iter()
            .map(TransposeWorkspace::heap_bytes)
            .sum()
    }
}

/// A leased [`TransposeWorkspace`]; returns to its pool on drop.
pub struct TransposeLease<'p, V: Copy> {
    ws: Option<TransposeWorkspace<V>>,
    pool: &'p TransposePool<V>,
}

impl<V: Copy> std::ops::Deref for TransposeLease<'_, V> {
    type Target = TransposeWorkspace<V>;
    fn deref(&self) -> &TransposeWorkspace<V> {
        self.ws.as_ref().expect("lease holds a workspace")
    }
}

impl<V: Copy> std::ops::DerefMut for TransposeLease<'_, V> {
    fn deref_mut(&mut self) -> &mut TransposeWorkspace<V> {
        self.ws.as_mut().expect("lease holds a workspace")
    }
}

impl<V: Copy> Drop for TransposeLease<'_, V> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool
                .stash
                .lock()
                .expect("transpose stash poisoned")
                .push(ws);
        }
    }
}

/// A leased [`KernelWorkspace`]; returns to its pool on drop.
pub struct WorkspaceLease<'p, A: Copy> {
    ws: Option<KernelWorkspace<A>>,
    pool: &'p WorkspacePool<A>,
}

impl<A: Copy> std::ops::Deref for WorkspaceLease<'_, A> {
    type Target = KernelWorkspace<A>;
    fn deref(&self) -> &KernelWorkspace<A> {
        self.ws.as_ref().expect("lease holds a workspace")
    }
}

impl<A: Copy> std::ops::DerefMut for WorkspaceLease<'_, A> {
    fn deref_mut(&mut self) -> &mut KernelWorkspace<A> {
        self.ws.as_mut().expect("lease holds a workspace")
    }
}

impl<A: Copy> Drop for WorkspaceLease<'_, A> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool
                .stash
                .lock()
                .expect("workspace stash poisoned")
                .push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accumulation_matches_spa_semantics() {
        let mut ws: KernelWorkspace<u64> = KernelWorkspace::new();
        // Dense row: wide enough estimate.
        ws.begin_row(16, 16);
        ws.scatter(5, 10, |a, b| a + b);
        ws.scatter(1, 2, |a, b| a + b);
        ws.scatter(5, 3, |a, b| a + b);
        ws.finish_row(0);
        // Hash row: estimate far below width/64.
        ws.begin_row(1 << 20, 1);
        ws.scatter(7, 4, |a, b| a + b);
        ws.finish_row(3);
        // Empty row leaves no trace.
        ws.begin_row(16, 16);
        ws.finish_row(5);
        let flat = ws.take_out();
        assert_eq!(flat.rows, vec![0, 3]);
        assert_eq!(flat.row_ptr, vec![0, 2, 3]);
        assert_eq!(flat.cols, vec![1, 5, 7]);
        assert_eq!(flat.vals, vec![2, 13, 4]);
        // After take_out the workspace starts a fresh output.
        assert!(ws.out.rows.is_empty() && ws.out.cols.is_empty());
    }

    #[test]
    fn dense_scratch_is_lazy_and_persistent() {
        let mut ws: KernelWorkspace<u64> = KernelWorkspace::new();
        let before = ws.heap_bytes();
        // Hash-only use allocates no dense scratch.
        ws.begin_row(1 << 20, 1);
        ws.scatter(0, 1, |a, b| a + b);
        ws.finish_row(0);
        assert!(ws.heap_bytes() < (1 << 20));
        let _ = before;
        // First dense use sizes it; later narrower rows keep it.
        ws.begin_row(1024, 1024);
        ws.scatter(0, 1, |a, b| a + b);
        ws.finish_row(1);
        let sized = ws.heap_bytes();
        ws.begin_row(512, 512);
        ws.scatter(0, 1, |a, b| a + b);
        ws.finish_row(2);
        assert_eq!(ws.heap_bytes(), sized, "scratch never shrinks or regrows");
    }

    #[test]
    fn pool_lease_and_return() {
        let pool: WorkspacePool<u64> = WorkspacePool::new();
        assert_eq!(pool.stashed(), 0);
        {
            let mut a = pool.lease();
            let mut b = pool.lease();
            a.begin_row(64, 64);
            a.scatter(1, 1, |x, y| x + y);
            a.finish_row(0);
            b.begin_row(64, 64);
            b.scatter(2, 2, |x, y| x + y);
            b.finish_row(0);
        }
        assert_eq!(pool.stashed(), 2);
        // Re-leasing pops a stashed workspace (no growth).
        {
            let _w = pool.lease();
            assert_eq!(pool.stashed(), 1);
        }
        assert_eq!(pool.stashed(), 2);
    }

    #[test]
    fn transpose_pool_lease_and_return() {
        let pool: TransposePool<u64> = TransposePool::new();
        assert_eq!(pool.stashed(), 0);
        {
            let a = pool.lease();
            let b = pool.lease();
            assert_eq!(a.heap_bytes(), 0);
            assert_eq!(b.heap_bytes(), 0);
        }
        assert_eq!(pool.stashed(), 2);
        {
            let _w = pool.lease();
            assert_eq!(pool.stashed(), 1);
        }
        assert_eq!(pool.stashed(), 2);
    }

    #[test]
    fn recycled_flats_restock_leases() {
        let pool: WorkspacePool<u64> = WorkspacePool::new();
        // Fill a workspace's flat buffers, move them out, recycle them.
        let flat = {
            let mut ws = pool.lease();
            ws.reserve_out(100);
            ws.begin_row(8, 8);
            ws.scatter(0, 1, |x, y| x + y);
            ws.finish_row(0);
            ws.take_out()
        };
        let cap = flat.cols.capacity();
        assert!(cap >= 100);
        pool.put_flat(flat);
        // The next lease inherits the recycled capacity.
        let ws = pool.lease();
        assert!(ws.out.cols.capacity() >= 100);
        assert!(ws.out.rows.is_empty() && ws.out.cols.is_empty());
        drop(ws);
        // Steady state: repeated lease → fill → recycle cycles stop growing
        // the pool's heap after the first cycle.
        let cycle = |pool: &WorkspacePool<u64>| {
            let flat = {
                let mut ws = pool.lease();
                for r in 0..20 {
                    ws.begin_row(8, 8);
                    ws.scatter(r % 8, 1, |x, y| x + y);
                    ws.finish_row(r);
                }
                ws.take_out()
            };
            pool.put_flat(flat);
            pool.heap_bytes()
        };
        let first = cycle(&pool);
        for _ in 0..3 {
            assert_eq!(cycle(&pool), first, "pool heap must not regrow");
        }
    }
}
