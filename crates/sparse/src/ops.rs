//! Element-wise update operations and the Bloom-guided extraction `A^R`.
//!
//! Section IV-A defines the local update interface: after the update matrix
//! `A*` has been redistributed, all dynamic-update operations touch only
//! local blocks:
//!
//! * **addition** `A += A*` — when updates are expressible in the semiring;
//! * **MERGE(A, A*)** — replace the value of every `(i, j)` non-zero in `A*`;
//! * **MASK(A, A*)** — delete every `(i, j)` of `A` that is non-zero in `A*`.
//!
//! All three run in expected `O(nnz(A*))` on a [`DhbMatrix`] block with the
//! update in DCSR layout. This module also hosts the `A^R` extraction of the
//! general dynamic SpGEMM: keep row `i` iff `r_i ≠ 0` and, within it, column
//! `k` iff bit `k mod 64` of `r_i` is set (Section V-B).

use crate::bloom::may_contain;
use crate::dcsr::Dcsr;
use crate::dhb::DhbMatrix;
use crate::semiring::Semiring;
use crate::{Index, RowScan};

/// `A += A*` over the semiring addition (the algebraic-update path).
/// Returns the number of *new* structural non-zeros.
pub fn add_assign<S: Semiring>(a: &mut DhbMatrix<S::Elem>, update: &Dcsr<S::Elem>) -> usize {
    assert_eq!(a.nrows(), update.nrows(), "shape mismatch");
    assert_eq!(a.ncols(), update.ncols(), "shape mismatch");
    let mut new = 0usize;
    for (r, cols, vals) in update.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            new += usize::from(a.add_entry::<S>(r, c, v));
        }
    }
    new
}

/// `MERGE(A, A*)`: replaces the value of every position that is non-zero in
/// `A*` (inserting if absent). Returns the number of new structural
/// non-zeros.
pub fn merge_assign<V: Copy>(a: &mut DhbMatrix<V>, update: &Dcsr<V>) -> usize {
    assert_eq!(a.nrows(), update.nrows(), "shape mismatch");
    assert_eq!(a.ncols(), update.ncols(), "shape mismatch");
    let mut new = 0usize;
    for (r, cols, vals) in update.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            new += usize::from(a.set(r, c, v));
        }
    }
    new
}

/// `MASK(A, A*)`: removes every position of `A` that is non-zero in `A*`.
/// Returns the number of entries actually removed.
pub fn mask_out<V: Copy, W: Copy>(a: &mut DhbMatrix<V>, update: &Dcsr<W>) -> usize {
    assert_eq!(a.nrows(), update.nrows(), "shape mismatch");
    assert_eq!(a.ncols(), update.ncols(), "shape mismatch");
    let mut removed = 0usize;
    for (r, cols, _) in update.iter_rows() {
        for &c in cols {
            removed += usize::from(a.remove(r, c).is_some());
        }
    }
    removed
}

/// Extracts `A^R` from a local block of `A'`: keeps row `i` iff
/// `filter[i] ≠ 0`, and within a kept row keeps column `k` iff
/// `filter[i]` may contain global column `k = col + col_offset`.
///
/// The paper chooses to filter (and broadcast) `A'` rather than `B'` because
/// matrices are stored row-wise, making row extraction + column subsetting
/// cheap (Section V-B). Output entries are column-sorted.
pub fn extract_filtered<V: Copy, M: RowScan<V>>(
    a: &M,
    filter: &[u64],
    col_offset: Index,
) -> Dcsr<V> {
    assert_eq!(a.nrows() as usize, filter.len(), "filter length mismatch");
    let mut out = Dcsr::empty(a.nrows(), a.ncols());
    let mut cols_buf: Vec<Index> = Vec::new();
    let mut vals_buf: Vec<V> = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    a.scan_rows(|r, cols, vals| {
        let bits = filter[r as usize];
        if bits == 0 {
            return;
        }
        cols_buf.clear();
        vals_buf.clear();
        for (&c, &v) in cols.iter().zip(vals) {
            if may_contain(bits, c + col_offset) {
                cols_buf.push(c);
                vals_buf.push(v);
            }
        }
        if cols_buf.is_empty() {
            return;
        }
        // Row entries may be unsorted (DHB); sort by column for a canonical
        // DCSR.
        order.clear();
        order.extend(0..cols_buf.len());
        order.sort_unstable_by_key(|&i| cols_buf[i]);
        let sorted_cols: Vec<Index> = order.iter().map(|&i| cols_buf[i]).collect();
        let sorted_vals: Vec<V> = order.iter().map(|&i| vals_buf[i]).collect();
        out.push_row(r, &sorted_cols, &sorted_vals);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::bloom_bit;
    use crate::semiring::{MinPlus, U64Plus};
    use crate::triple::Triple;

    fn t(r: Index, c: Index, v: u64) -> Triple<u64> {
        Triple::new(r, c, v)
    }

    #[test]
    fn add_assign_semiring() {
        let mut a: DhbMatrix<u64> = DhbMatrix::new(4, 4);
        a.set(0, 0, 5);
        let upd = Dcsr::from_triples::<U64Plus>(4, 4, vec![t(0, 0, 3), t(1, 1, 7)]);
        let new = add_assign::<U64Plus>(&mut a, &upd);
        assert_eq!(new, 1);
        assert_eq!(a.get(0, 0), Some(8));
        assert_eq!(a.get(1, 1), Some(7));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn add_assign_min_plus_decreases_only() {
        let mut a: DhbMatrix<f64> = DhbMatrix::new(2, 2);
        a.set(0, 0, 5.0);
        let upd = Dcsr::from_triples::<MinPlus>(
            2,
            2,
            vec![Triple::new(0, 0, 9.0), Triple::new(0, 1, 2.0)],
        );
        add_assign::<MinPlus>(&mut a, &upd);
        // min(5, 9) = 5: the algebraic add cannot increase a value.
        assert_eq!(a.get(0, 0), Some(5.0));
        assert_eq!(a.get(0, 1), Some(2.0));
    }

    #[test]
    fn merge_assign_replaces() {
        let mut a: DhbMatrix<u64> = DhbMatrix::new(4, 4);
        a.set(0, 0, 5);
        let upd = Dcsr::from_triples::<U64Plus>(4, 4, vec![t(0, 0, 3), t(2, 3, 9)]);
        let new = merge_assign(&mut a, &upd);
        assert_eq!(new, 1);
        assert_eq!(a.get(0, 0), Some(3), "MERGE replaces, never combines");
        assert_eq!(a.get(2, 3), Some(9));
    }

    #[test]
    fn mask_out_removes() {
        let mut a: DhbMatrix<u64> = DhbMatrix::new(4, 4);
        a.set(0, 0, 1);
        a.set(1, 1, 2);
        a.set(2, 2, 3);
        let upd = Dcsr::from_triples::<U64Plus>(4, 4, vec![t(0, 0, 0), t(1, 1, 0), t(3, 3, 0)]);
        let removed = mask_out(&mut a, &upd);
        assert_eq!(removed, 2, "masking a missing entry is a no-op");
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(2, 2), Some(3));
    }

    #[test]
    fn extract_filtered_rows_and_cols() {
        let a = Dcsr::from_triples::<U64Plus>(
            4,
            200,
            vec![
                t(0, 1, 10),
                t(0, 65, 11),
                t(0, 2, 12),
                t(1, 1, 13),
                t(3, 5, 14),
            ],
        );
        // Row 0: allow k with bit (1 mod 64) -> keeps cols 1 and 65 (alias).
        // Row 1: zero filter -> dropped. Row 3: allow bit of col 5.
        let filter = vec![bloom_bit(1), 0, 0, bloom_bit(5)];
        let out = extract_filtered(&a, &filter, 0);
        assert_eq!(
            out.to_triples(),
            vec![t(0, 1, 10), t(0, 65, 11), t(3, 5, 14)]
        );
        out.validate().unwrap();
    }

    #[test]
    fn extract_filtered_col_offset() {
        let a = Dcsr::from_triples::<U64Plus>(1, 10, vec![t(0, 0, 1), t(0, 1, 2)]);
        // Global col of local col 0 is 7; allow only global 8 (= local 1).
        let out = extract_filtered(&a, &[bloom_bit(8)], 7);
        assert_eq!(out.to_triples(), vec![t(0, 1, 2)]);
    }

    #[test]
    fn extract_filtered_from_dhb_sorts_rows() {
        let mut a: DhbMatrix<u64> = DhbMatrix::new(2, 10);
        a.set(0, 7, 1);
        a.set(0, 3, 2);
        a.set(0, 5, 3);
        let out = extract_filtered(&a, &[u64::MAX, 0], 0);
        let cols: Vec<Index> = out.to_triples().iter().map(|x| x.col).collect();
        assert_eq!(cols, vec![3, 5, 7]);
    }

    #[test]
    fn extract_full_filter_keeps_everything() {
        let a = Dcsr::from_triples::<U64Plus>(3, 3, vec![t(0, 0, 1), t(1, 2, 2), t(2, 1, 3)]);
        let out = extract_filtered(&a, &[u64::MAX; 3], 0);
        assert_eq!(out.to_triples(), a.to_triples());
    }
}
