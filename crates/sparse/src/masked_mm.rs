//! Output-masked SpGEMM for the general dynamic algorithm.
//!
//! Algorithm 2 recomputes only the entries of `C'` that may have changed —
//! those non-zero in `C*`. The local multiplication therefore takes `C*`'s
//! sparsity pattern as an *output mask*: a term `a_ik · b_kj` is accumulated
//! only if `(i, j)` is masked. Following Section VI-B, the mask is realized
//! as a local hash table over the `(row, col)` pairs of the `C*` block
//! (rebuilt per rank — the paper found rebuilding cheaper than broadcasting
//! the table itself, because hash tables are much larger than `nnz` due to
//! empty slots).
//!
//! The kernel also emits the *updated* Bloom filter `H` for the recomputed
//! entries, fused into the accumulation as in [`crate::local_mm`].

use crate::dcsr::Dcsr;
use crate::local_mm::{row_flop_bound, run_scheduled, stored_row_weights, KernelPlan, MmOutput};
use crate::semiring::Semiring;
use crate::{Index, RowRead, RowScan};
use dspgemm_util::hash::FxHashSet;

/// A hash set over `(row, col)` index pairs, used as an output mask.
#[derive(Debug, Clone, Default)]
pub struct MaskSet {
    set: FxHashSet<u64>,
}

#[inline]
fn pack(r: Index, c: Index) -> u64 {
    ((r as u64) << 32) | c as u64
}

impl MaskSet {
    /// Builds the mask from the sparsity pattern of a block (values ignored).
    pub fn from_pattern<V: Copy>(block: &Dcsr<V>) -> Self {
        let mut set = FxHashSet::default();
        set.reserve(block.nnz());
        for (r, cols, _) in block.iter_rows() {
            for &c in cols {
                set.insert(pack(r, c));
            }
        }
        Self { set }
    }

    /// Builds the mask from explicit `(row, col)` pairs — the construction
    /// path for candidate-pair masks that exist independently of any matrix
    /// (e.g. link-prediction candidates in the analytics layer).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Index, Index)>) -> Self {
        let mut mask = Self::default();
        for (r, c) in pairs {
            mask.insert(r, c);
        }
        mask
    }

    /// Adds `(r, c)` to the mask. Returns `true` if it was not present.
    #[inline]
    pub fn insert(&mut self, r: Index, c: Index) -> bool {
        self.set.insert(pack(r, c))
    }

    /// Removes `(r, c)` from the mask. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, r: Index, c: Index) -> bool {
        self.set.remove(&pack(r, c))
    }

    /// Iterates the masked `(row, col)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index)> + '_ {
        self.set
            .iter()
            .map(|&k| ((k >> 32) as Index, (k & 0xFFFF_FFFF) as Index))
    }

    /// Whether `(r, c)` is masked (i.e. should be computed).
    #[inline]
    pub fn contains(&self, r: Index, c: Index) -> bool {
        self.set.contains(&pack(r, c))
    }

    /// Number of masked positions.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Masked Gustavson SpGEMM with fused Bloom tracking: computes
/// `(A · B) masked at mask`, returning `(value, bloom)` entries for exactly
/// the masked positions that receive at least one contribution.
///
/// `k_offset` is the global index of `B`'s local row 0 (see
/// [`crate::local_mm::spgemm_bloom`]).
pub fn masked_spgemm_bloom<S, L, R>(
    a: &L,
    b: &R,
    mask: &MaskSet,
    k_offset: Index,
    threads: usize,
) -> MmOutput<(S::Elem, u64)>
where
    S: Semiring,
    L: RowScan<S::Elem> + Sync,
    R: RowRead<S::Elem> + Sync,
{
    masked_spgemm_bloom_with::<S, L, R>(a, b, mask, k_offset, KernelPlan::new(threads))
}

/// [`masked_spgemm_bloom`] under an explicit
/// [`KernelPlan`].
///
/// The scheduling weights are the *unmasked* flop upper bounds — the mask
/// prunes work unpredictably, which is exactly the "estimates unreliable"
/// case [`dspgemm_util::par::RowSchedule::WorkStealing`] exists for — and
/// the per-row SPA choice caps the row estimate at the mask size (a row can
/// never produce more entries than the mask holds).
pub fn masked_spgemm_bloom_with<S, L, R>(
    a: &L,
    b: &R,
    mask: &MaskSet,
    k_offset: Index,
    plan: KernelPlan<'_, (S::Elem, u64)>,
) -> MmOutput<(S::Elem, u64)>
where
    S: Semiring,
    L: RowScan<S::Elem> + Sync,
    R: RowRead<S::Elem> + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let combine = |(v1, b1): (S::Elem, u64), (v2, b2): (S::Elem, u64)| (S::add(v1, v2), b1 | b2);
    run_scheduled(
        plan,
        nrows,
        ncols,
        mask.len() as u64,
        || stored_row_weights(a, b),
        |ws, range| {
            a.scan_row_range(
                range.start as Index,
                range.end as Index,
                |i, acols, avals| {
                    let est = row_flop_bound(b, acols);
                    ws.begin_row(ncols, est.min(mask.len() as u64));
                    for (&k, &av) in acols.iter().zip(avals) {
                        let bit = crate::bloom::bloom_bit(k + k_offset);
                        let (bcols, bvals) = b.row(k);
                        for (&j, &bv) in bcols.iter().zip(bvals) {
                            // The mask check precedes the multiply: unmasked terms
                            // cost a hash probe but no flop, mirroring Section VI-B.
                            if mask.contains(i, j) {
                                ws.out.flops += 1;
                                ws.scatter(j, (S::mul(av, bv), bit), combine);
                            }
                        }
                    }
                    ws.finish_row(i);
                },
            );
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::local_mm::spgemm_bloom;
    use crate::semiring::U64Plus;
    use crate::triple::Triple;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_csr(rng: &mut SplitMix64, n: Index, nnz: usize) -> Csr<u64> {
        let triples: Vec<Triple<u64>> = (0..nnz)
            .map(|_| {
                Triple::new(
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(n as u64) as Index,
                    rng.gen_range(9) + 1,
                )
            })
            .collect();
        Csr::from_triples::<U64Plus>(n, n, triples)
    }

    #[test]
    fn mask_set_membership() {
        let block =
            Dcsr::from_triples::<U64Plus>(10, 10, vec![Triple::new(1, 2, 1), Triple::new(3, 4, 1)]);
        let mask = MaskSet::from_pattern(&block);
        assert_eq!(mask.len(), 2);
        assert!(mask.contains(1, 2));
        assert!(mask.contains(3, 4));
        assert!(!mask.contains(2, 1));
        assert!(!mask.contains(0, 0));
    }

    #[test]
    fn pair_construction_and_iteration() {
        let mut mask = MaskSet::from_pairs([(3, 4), (1, 2)]);
        assert!(mask.insert(9, 0));
        assert!(!mask.insert(9, 0), "duplicate insert");
        assert_eq!(mask.len(), 3);
        let mut pairs: Vec<(Index, Index)> = mask.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (3, 4), (9, 0)]);
        assert!(mask.remove(3, 4));
        assert!(!mask.remove(3, 4));
        assert!(!mask.contains(3, 4));
    }

    #[test]
    fn full_mask_equals_unmasked_product() {
        let mut rng = SplitMix64::new(5);
        let a = random_csr(&mut rng, 40, 200);
        let b = random_csr(&mut rng, 40, 200);
        let full = spgemm_bloom::<U64Plus, _, _>(&a, &b, 0, 2);
        let mask = MaskSet::from_pattern(&full.result);
        let masked = masked_spgemm_bloom::<U64Plus, _, _>(&a, &b, &mask, 0, 2);
        assert_eq!(masked.result, full.result);
        assert_eq!(masked.flops, full.flops);
    }

    #[test]
    fn partial_mask_restricts_output() {
        let mut rng = SplitMix64::new(6);
        let a = random_csr(&mut rng, 30, 150);
        let b = random_csr(&mut rng, 30, 150);
        let full = spgemm_bloom::<U64Plus, _, _>(&a, &b, 0, 1);
        // Mask = first half of the full product's entries.
        let all = full.result.to_triples();
        let half: Vec<_> = all[..all.len() / 2].to_vec();
        let mask_block = Dcsr::from_sorted_triples(30, 30, &half);
        let mask = MaskSet::from_pattern(&mask_block);
        let masked = masked_spgemm_bloom::<U64Plus, _, _>(&a, &b, &mask, 0, 1);
        let got = masked.result.to_triples();
        assert_eq!(got.len(), half.len());
        for (g, h) in got.iter().zip(&half) {
            assert_eq!((g.row, g.col), (h.row, h.col));
            assert_eq!(g.val, h.val, "masked value must equal full product value");
        }
        assert!(masked.flops < full.flops);
    }

    #[test]
    fn empty_mask_empty_output() {
        let mut rng = SplitMix64::new(8);
        let a = random_csr(&mut rng, 20, 100);
        let b = random_csr(&mut rng, 20, 100);
        let masked = masked_spgemm_bloom::<U64Plus, _, _>(&a, &b, &MaskSet::default(), 0, 2);
        assert_eq!(masked.result.nnz(), 0);
        assert_eq!(masked.flops, 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = SplitMix64::new(9);
        let a = random_csr(&mut rng, 64, 400);
        let b = random_csr(&mut rng, 64, 400);
        let full = spgemm_bloom::<U64Plus, _, _>(&a, &b, 0, 1);
        let mask = MaskSet::from_pattern(&full.result);
        let seq = masked_spgemm_bloom::<U64Plus, _, _>(&a, &b, &mask, 0, 1);
        let par = masked_spgemm_bloom::<U64Plus, _, _>(&a, &b, &mask, 0, 4);
        assert_eq!(seq.result, par.result);
    }
}
