//! Semirings: the algebra SpGEMM is generic over.
//!
//! The paper considers matrices "over arbitrary semirings" (Section III):
//! `(+, ·)` for numeric products, `(∧, ∨)` over Booleans, `(min, +)` for
//! shortest paths. A semiring fixes the addition (`add`), multiplication
//! (`mul`) and the additive neutral element (`zero`); structural zeros of a
//! sparse matrix are implicitly `zero`.
//!
//! Semirings are zero-sized type-level markers: operations are associated
//! functions, so kernels monomorphize with no per-element indirection.

use dspgemm_util::{WireDecode, WireSize};

/// A semiring over element type [`Semiring::Elem`].
///
/// Laws (checked by property tests, not by the compiler):
/// * `add` is associative and commutative with neutral element `zero()`;
/// * `mul` is associative;
/// * `mul` distributes over `add`;
/// * `zero()` annihilates: `mul(zero, x) = mul(x, zero) = zero`.
///
/// The *algebraic update* fast path of dynamic SpGEMM (Algorithm 1) is sound
/// whenever updates can be expressed as `A' = A + A*` under this `add`; the
/// *general update* path (Algorithm 2) needs no such property.
pub trait Semiring: Copy + Clone + Send + Sync + std::fmt::Debug + 'static {
    /// The scalar type.
    type Elem: Copy
        + Clone
        + Send
        + Sync
        + PartialEq
        + std::fmt::Debug
        + WireSize
        + WireDecode
        + 'static;

    /// Additive neutral element (the implicit value of structural zeros).
    fn zero() -> Self::Elem;

    /// Semiring addition.
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Semiring multiplication.
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Whether `e` equals the additive neutral element. Entries that become
    /// numerically zero are *kept* as structural non-zeros (the paper keeps
    /// the structural/numerical distinction); this predicate exists for
    /// diagnostics and tests only.
    #[inline]
    fn is_zero(e: Self::Elem) -> bool {
        e == Self::zero()
    }

    /// Human-readable name for reports.
    fn name() -> &'static str;
}

/// The ordinary arithmetic semiring `(+, ·)` over `f64`.
///
/// This is a full ring, so *every* update (including deletions, rewritten as
/// adding the additive inverse) is an algebraic update — the case evaluated
/// in the paper's Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F64Plus;

impl Semiring for F64Plus {
    type Elem = f64;

    #[inline]
    fn zero() -> f64 {
        0.0
    }

    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }

    fn name() -> &'static str {
        "(+,*) over f64"
    }
}

/// The arithmetic semiring `(+, ·)` over `u64` (exact; used by counting
/// applications such as triangle counting, and by tests that need equality
/// without float tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U64Plus;

impl Semiring for U64Plus {
    type Elem = u64;

    #[inline]
    fn zero() -> u64 {
        0
    }

    #[inline]
    fn add(a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }

    #[inline]
    fn mul(a: u64, b: u64) -> u64 {
        a.wrapping_mul(b)
    }

    fn name() -> &'static str {
        "(+,*) over u64"
    }
}

/// The tropical semiring `(min, +)` over `f64`, with `+∞` as zero.
///
/// Used for multi-source shortest paths. `min` cannot *increase* values, so
/// edge-weight increases and deletions are **general** updates — the case
/// evaluated in the paper's Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = f64;

    #[inline]
    fn zero() -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }

    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }

    fn name() -> &'static str {
        "(min,+) over f64"
    }
}

/// The Boolean semiring `(∨, ∧)`: reachability / structural products.
/// Setting entries to `false` is a general update (`∨` cannot unset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type Elem = bool;

    #[inline]
    fn zero() -> bool {
        false
    }

    #[inline]
    fn add(a: bool, b: bool) -> bool {
        a | b
    }

    #[inline]
    fn mul(a: bool, b: bool) -> bool {
        a & b
    }

    fn name() -> &'static str {
        "(or,and) over bool"
    }
}

/// The bottleneck semiring `(max, min)` over `f64`, with `-∞` as zero:
/// widest-path / bottleneck-capacity problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F64MaxMin;

impl Semiring for F64MaxMin {
    type Elem = f64;

    #[inline]
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }

    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }

    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn name() -> &'static str {
        "(max,min) over f64"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<S: Semiring>(samples: &[S::Elem]) {
        let z = S::zero();
        for &a in samples {
            // Additive identity and annihilation.
            assert_eq!(S::add(a, z), a, "{}: a+0=a", S::name());
            assert_eq!(S::add(z, a), a);
            assert_eq!(S::mul(a, z), z, "{}: a*0=0", S::name());
            assert_eq!(S::mul(z, a), z);
            for &b in samples {
                assert_eq!(S::add(a, b), S::add(b, a), "{}: add commutes", S::name());
                for &c in samples {
                    assert_eq!(
                        S::add(S::add(a, b), c),
                        S::add(a, S::add(b, c)),
                        "{}: add assoc",
                        S::name()
                    );
                    assert_eq!(
                        S::mul(S::mul(a, b), c),
                        S::mul(a, S::mul(b, c)),
                        "{}: mul assoc",
                        S::name()
                    );
                    assert_eq!(
                        S::mul(a, S::add(b, c)),
                        S::add(S::mul(a, b), S::mul(a, c)),
                        "{}: left distrib",
                        S::name()
                    );
                    assert_eq!(
                        S::mul(S::add(a, b), c),
                        S::add(S::mul(a, c), S::mul(b, c)),
                        "{}: right distrib",
                        S::name()
                    );
                }
            }
        }
    }

    #[test]
    fn u64_plus_laws() {
        check_laws::<U64Plus>(&[0, 1, 2, 7, 1_000_003]);
    }

    #[test]
    fn f64_plus_laws_on_integers() {
        // Use integer-valued floats so distributivity is exact.
        check_laws::<F64Plus>(&[0.0, 1.0, 2.0, -3.0, 64.0]);
    }

    #[test]
    fn min_plus_laws() {
        check_laws::<MinPlus>(&[f64::INFINITY, 0.0, 1.5, 2.0, 10.0]);
    }

    #[test]
    fn bool_laws() {
        check_laws::<BoolOrAnd>(&[false, true]);
    }

    #[test]
    fn max_min_laws() {
        check_laws::<F64MaxMin>(&[f64::NEG_INFINITY, -1.0, 0.0, 3.5, 9.0]);
    }

    #[test]
    fn zero_predicates() {
        assert!(F64Plus::is_zero(0.0));
        assert!(!F64Plus::is_zero(1.0));
        assert!(MinPlus::is_zero(f64::INFINITY));
        assert!(!MinPlus::is_zero(0.0));
        assert!(BoolOrAnd::is_zero(false));
    }
}
