//! Local (per-rank) SpGEMM: Gustavson's row-wise algorithm over a semiring.
//!
//! `C[i, :] = Σ_k A[i, k] · B[k, :]` — iterate the non-empty rows of `A`,
//! scale the corresponding rows of `B`, and accumulate in a SPA. The
//! implementation is generic over
//!
//! * the semiring `S`,
//! * the left operand (anything that can [`RowScan`]: CSR, DCSR, DHB), and
//! * the right operand (anything with O(1) row access, [`RowRead`]: CSR,
//!   DHB — never DCSR, matching the paper's "no search for an index is ever
//!   necessary" invariant),
//!
//! and is parallelized over contiguous row ranges of `A` (the paper's
//! shared-memory parallelization of different output rows, Section VI-A).
//!
//! Output assembly is **allocation-flat**: each worker range drains its SPA
//! into one reusable `(rows, row_ptr, cols, vals)` buffer set (`FlatRows`)
//! and the final [`Dcsr`] is built by bulk moves/appends with exact `nnz`
//! reservation — no per-row `Vec`s, no double copy through staging buffers.
//!
//! The fused variant [`spgemm_bloom`] additionally tracks the ℓ=64-bit Bloom
//! filter of contributing inner indices `k` that the general dynamic
//! algorithm needs (Section V-B): bit `k mod 64` of the output entry's
//! bitfield is set whenever `a_ik · b_kj` contributes to `c_ij`.

use crate::dcsr::Dcsr;
use crate::semiring::Semiring;
use crate::workspace::{KernelWorkspace, WorkspaceLease, WorkspacePool};
use crate::{Index, RowRead, RowScan};
use dspgemm_util::par::{
    parallel_map_ranges_init, parallel_map_stealing, split_ranges, split_ranges_by_weight,
    STEAL_CHUNKS_PER_THREAD,
};

pub use dspgemm_util::par::RowSchedule;

/// Result of a local multiplication: the product block plus the scalar
/// multiplication count (the paper's `flops` metric).
#[derive(Debug, Clone)]
pub struct MmOutput<A> {
    /// The product, hypersparse-friendly.
    pub result: Dcsr<A>,
    /// Number of scalar semiring multiplications performed.
    pub flops: u64,
    /// Per-worker-thread split of `flops` (index = intra-rank thread id;
    /// length = the call's thread count). `max/mean` over this vector is the
    /// kernel's load-imbalance metric.
    pub thread_flops: Vec<u64>,
}

/// Scheduling and workspace context for one kernel call: the intra-rank
/// thread count, the [`RowSchedule`], and (optionally) the workspace pool
/// buffers are leased from. `Copy`, so call sites pass it by value.
#[derive(Debug, Clone, Copy)]
pub struct KernelPlan<'p, A> {
    /// Intra-rank worker threads (the paper's OpenMP `T`).
    pub threads: usize,
    /// How rows are assigned to workers.
    pub schedule: RowSchedule,
    /// Pool to lease per-thread workspaces from; `None` builds ephemeral
    /// workspaces (one allocation set per call — the pre-pooling behavior).
    pub pool: Option<&'p WorkspacePool<A>>,
}

impl<A: Copy> KernelPlan<'_, A> {
    /// Flop-balanced, unpooled plan — the default the `threads`-only kernel
    /// entry points use.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            schedule: RowSchedule::default(),
            pool: None,
        }
    }

    /// Plan with an explicit schedule (the `repro balance` ablation arms).
    pub fn with_schedule(threads: usize, schedule: RowSchedule) -> Self {
        Self {
            threads,
            schedule,
            pool: None,
        }
    }
}

impl<'p, A: Copy> KernelPlan<'p, A> {
    /// Attaches a workspace pool.
    pub fn pooled(mut self, pool: &'p WorkspacePool<A>) -> Self {
        self.pool = Some(pool);
        self
    }

    fn lease(&self) -> PlanLease<'p, A> {
        match self.pool {
            Some(pool) => PlanLease::Pooled(pool.lease()),
            None => PlanLease::Owned(KernelWorkspace::new()),
        }
    }
}

/// A workspace obtained through a [`KernelPlan`]: pooled (returns on drop)
/// or ephemeral.
enum PlanLease<'p, A: Copy> {
    Pooled(WorkspaceLease<'p, A>),
    Owned(KernelWorkspace<A>),
}

impl<A: Copy> std::ops::Deref for PlanLease<'_, A> {
    type Target = KernelWorkspace<A>;
    fn deref(&self) -> &KernelWorkspace<A> {
        match self {
            PlanLease::Pooled(l) => l,
            PlanLease::Owned(w) => w,
        }
    }
}

impl<A: Copy> std::ops::DerefMut for PlanLease<'_, A> {
    fn deref_mut(&mut self) -> &mut KernelWorkspace<A> {
        match self {
            PlanLease::Pooled(l) => &mut *l,
            PlanLease::Owned(w) => w,
        }
    }
}

/// Worker result: the rows produced by one contiguous range, in the flat
/// `(rows, row_ptr, cols, vals)` form of [`Dcsr::from_parts`]. Each worker
/// drains its SPA straight into these buffers — no per-row `Vec`, no
/// intermediate `(col, val)` pairs.
#[derive(Debug)]
pub(crate) struct FlatRows<A> {
    pub(crate) rows: Vec<Index>,
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) cols: Vec<Index>,
    pub(crate) vals: Vec<A>,
    pub(crate) flops: u64,
}

impl<A> FlatRows<A> {
    pub(crate) fn new() -> Self {
        Self {
            rows: Vec::new(),
            row_ptr: vec![0],
            cols: Vec::new(),
            vals: Vec::new(),
            flops: 0,
        }
    }

    /// Closes the current row after its entries were drained into
    /// `cols`/`vals`.
    #[inline]
    pub(crate) fn seal_row(&mut self, row: Index) {
        self.rows.push(row);
        self.row_ptr.push(self.cols.len());
    }

    /// Empties the buffers, keeping their capacity (pool recycling).
    pub(crate) fn clear(&mut self) {
        self.rows.clear();
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.cols.clear();
        self.vals.clear();
        self.flops = 0;
    }

    /// Capacity-held heap bytes (workspace-reuse accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<Index>()
            + self.row_ptr.capacity() * std::mem::size_of::<usize>()
            + self.cols.capacity() * std::mem::size_of::<Index>()
            + self.vals.capacity() * std::mem::size_of::<A>()
    }
}

/// Concatenates per-range flat outputs into one [`Dcsr`]. The single-range
/// case moves the buffers into the result without copying; multi-range
/// output is assembled with exact `nnz`/row reservations and one bulk append
/// per range, after which the parts' buffers are recycled into `pool`.
pub(crate) fn assemble<A: Copy>(
    nrows: Index,
    ncols: Index,
    mut parts: Vec<FlatRows<A>>,
    pool: Option<&WorkspacePool<A>>,
) -> MmOutput<A> {
    let flops = parts.iter().map(|p| p.flops).sum();
    if parts.len() == 1 {
        let p = parts.pop().expect("one part");
        let result = Dcsr::from_parts(nrows, ncols, p.rows, p.row_ptr, p.cols, p.vals);
        return MmOutput {
            result,
            flops,
            thread_flops: Vec::new(),
        };
    }
    let nnz: usize = parts.iter().map(|p| p.cols.len()).sum();
    let stored_rows: usize = parts.iter().map(|p| p.rows.len()).sum();
    let mut result = Dcsr::with_capacity(nrows, ncols, stored_rows, nnz);
    for p in &parts {
        result.append_rows_flat(&p.rows, &p.row_ptr, &p.cols, &p.vals);
    }
    if let Some(pool) = pool {
        for p in parts {
            pool.put_flat(p);
        }
    }
    MmOutput {
        result,
        flops,
        thread_flops: Vec::new(),
    }
}

/// Upper bound on one row's flops (and therefore its output non-zeros):
/// `Σ_k |B[k, :]|` over the row's stored columns. Drives both the
/// flop-weighted range split and the per-row dense-vs-hash SPA choice.
#[inline]
pub(crate) fn row_flop_bound<VB, R: RowRead<VB>>(b: &R, acols: &[Index]) -> u64 {
    acols.iter().map(|&k| b.row(k).0.len() as u64).sum()
}

/// Per-stored-row flop upper bounds of `a · b`, as ascending
/// `(row, weight)` pairs — the input of [`split_ranges_by_weight`]. One
/// O(nnz(A)) pass with O(1) row-length lookups into `b`.
pub(crate) fn stored_row_weights<VA, VB>(
    a: &impl RowScan<VA>,
    b: &impl RowRead<VB>,
) -> Vec<(usize, u64)> {
    let mut weights = Vec::new();
    a.scan_rows(|i, acols, _| {
        weights.push((i as usize, row_flop_bound(b, acols)));
    });
    weights
}

/// The scheduled kernel driver shared by every local SpGEMM flavor: builds
/// the row ranges for the plan's [`RowSchedule`], runs `body` over them with
/// one (leased) [`KernelWorkspace`] per worker, and assembles the per-range
/// flat outputs in row order — so the result is bit-identical across
/// schedules and thread counts.
///
/// `weights` is invoked only by [`RowSchedule::FlopBalanced`] (the other
/// schedules never pay the estimation pass); its per-range capped sums
/// double as output-capacity reservations, additionally clamped to
/// `reservation_cap` — the kernel's own bound on its *total* output
/// (`u64::MAX` when none; the masked kernel passes the mask size, whose
/// pruning the unmasked weights cannot see). Kernel bodies recompute each
/// row's bound inline (they need it for flop accounting and the SPA choice
/// under *every* schedule) — under `FlopBalanced` that repeats the O(1)
/// row-length lookups of the estimation pass, a deliberate trade: the
/// lookups touch exactly the `B` row headers the multiply reads next, and
/// threading the weights vector into four kernel bodies would buy that
/// O(nnz(A)) back at the cost of cursor plumbing in every kernel.
pub(crate) fn run_scheduled<A, W, F>(
    plan: KernelPlan<'_, A>,
    nrows: Index,
    ncols: Index,
    reservation_cap: u64,
    weights: W,
    body: F,
) -> MmOutput<A>
where
    A: Copy + Send,
    W: FnOnce() -> Vec<(usize, u64)>,
    F: Fn(&mut KernelWorkspace<A>, std::ops::Range<usize>) + Sync,
{
    let threads = plan.threads.max(1);
    let n = nrows as usize;
    if threads == 1 || n == 0 {
        // Inline: no scheduling decision to make, no estimation pass.
        let mut ws = plan.lease();
        body(&mut ws, 0..n);
        let part = ws.take_out();
        let flops = part.flops;
        let mut out = assemble(nrows, ncols, vec![part], plan.pool);
        out.thread_flops = vec![flops];
        return out;
    }
    match plan.schedule {
        RowSchedule::Contiguous | RowSchedule::FlopBalanced => {
            let mut reservations: Vec<u64> = Vec::new();
            let ranges = if plan.schedule == RowSchedule::Contiguous {
                split_ranges(n, threads)
            } else {
                let w = weights();
                let ranges = split_ranges_by_weight(n, threads, &w);
                // Output-capacity upper bounds per range: a row emits at
                // most min(w_i, ncols) entries, so the per-row-capped sum
                // is tight even when a hub row's flop bound dwarfs ncols
                // (the uncapped sum could reserve orders of magnitude too
                // much, and pooled buffers never shrink). One pass over
                // `w`: ranges are sorted, disjoint and cover 0..n, and `w`
                // is ascending by row.
                reservations = vec![0u64; ranges.len()];
                let mut ri = 0;
                for &(row, wt) in &w {
                    while !ranges[ri].contains(&row) {
                        ri += 1;
                    }
                    reservations[ri] += wt.min(ncols as u64);
                }
                for r in &mut reservations {
                    *r = (*r).min(reservation_cap);
                }
                ranges
            };
            let parts = parallel_map_ranges_init(
                ranges,
                |t| {
                    let mut ws = plan.lease();
                    if let Some(&bound) = reservations.get(t) {
                        ws.reserve_out(bound.min(isize::MAX as u64 / 16) as usize);
                    }
                    ws
                },
                |ws, range| {
                    body(ws, range);
                    ws.take_out()
                },
            );
            let thread_flops: Vec<u64> = parts.iter().map(|p| p.flops).collect();
            let mut out = assemble(nrows, ncols, parts, plan.pool);
            out.thread_flops = thread_flops;
            out
        }
        RowSchedule::WorkStealing => {
            // Each worker accumulates every chunk it steals into its single
            // flat buffer set, recording per-chunk watermarks; assembly then
            // slices the chunks back out in chunk order. One buffer set per
            // worker (not per chunk) keeps the pool bounded: `threads` flats
            // recycle per call, `threads` leases pop them on the next.
            struct ChunkMark {
                rows: std::ops::Range<usize>,
                flops: u64,
            }
            let chunks = split_ranges(n, threads * STEAL_CHUNKS_PER_THREAD);
            let (marks, flats) = parallel_map_stealing(
                threads,
                chunks,
                |_| plan.lease(),
                |ws, range| {
                    let rows_before = ws.out.rows.len();
                    let flops_before = ws.out.flops;
                    body(ws, range);
                    ChunkMark {
                        rows: rows_before..ws.out.rows.len(),
                        flops: ws.out.flops - flops_before,
                    }
                },
                |mut ws| ws.take_out(),
            );
            let nnz: usize = flats.iter().map(|fl| fl.cols.len()).sum();
            let stored_rows: usize = flats.iter().map(|fl| fl.rows.len()).sum();
            let mut result = Dcsr::with_capacity(nrows, ncols, stored_rows, nnz);
            let mut thread_flops = vec![0u64; threads];
            let mut flops = 0u64;
            let mut rebased: Vec<usize> = Vec::new();
            for (worker, mark) in &marks {
                thread_flops[*worker] += mark.flops;
                flops += mark.flops;
                let fl = &flats[*worker];
                let ptr = &fl.row_ptr[mark.rows.start..=mark.rows.end];
                let base = ptr[0];
                rebased.clear();
                rebased.extend(ptr.iter().map(|&p| p - base));
                result.append_rows_flat(
                    &fl.rows[mark.rows.clone()],
                    &rebased,
                    &fl.cols[base..*ptr.last().expect("non-empty ptr slice")],
                    &fl.vals[base..*ptr.last().expect("non-empty ptr slice")],
                );
            }
            if let Some(pool) = plan.pool {
                for fl in flats {
                    pool.put_flat(fl);
                }
            }
            MmOutput {
                result,
                flops,
                thread_flops,
            }
        }
    }
}

/// Gustavson SpGEMM: `A · B` over semiring `S`, parallelized over `threads`
/// flop-balanced row ranges of `A` (see [`spgemm_with`] for schedule and
/// workspace control).
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn spgemm<S, L, R>(a: &L, b: &R, threads: usize) -> MmOutput<S::Elem>
where
    S: Semiring,
    L: RowScan<S::Elem> + Sync,
    R: RowRead<S::Elem> + Sync,
{
    spgemm_with::<S, L, R>(a, b, KernelPlan::new(threads))
}

/// [`spgemm`] under an explicit [`KernelPlan`] (schedule + workspace pool).
/// All schedules produce bit-identical results.
pub fn spgemm_with<S, L, R>(a: &L, b: &R, plan: KernelPlan<'_, S::Elem>) -> MmOutput<S::Elem>
where
    S: Semiring,
    L: RowScan<S::Elem> + Sync,
    R: RowRead<S::Elem> + Sync,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimension mismatch: {}x{} times {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let nrows = a.nrows();
    let ncols = b.ncols();
    run_scheduled(
        plan,
        nrows,
        ncols,
        u64::MAX,
        || stored_row_weights(a, b),
        |ws, range| {
            a.scan_row_range(
                range.start as Index,
                range.end as Index,
                |i, acols, avals| {
                    let est = row_flop_bound(b, acols);
                    ws.out.flops += est;
                    ws.begin_row(ncols, est);
                    for (&k, &av) in acols.iter().zip(avals) {
                        let (bcols, bvals) = b.row(k);
                        for (&j, &bv) in bcols.iter().zip(bvals) {
                            ws.scatter(j, S::mul(av, bv), S::add);
                        }
                    }
                    ws.finish_row(i);
                },
            );
        },
    )
}

/// Gustavson SpGEMM fused with Bloom-filter tracking: output entries are
/// `(value, bloom)` pairs where `bloom` ORs `1 << ((k + k_offset) mod 64)`
/// over every contributing inner index `k`.
///
/// `k_offset` translates the local inner index into the *global* row index of
/// `B` (`=` global column index of `A`), so that bits are consistent across
/// the blocks of a distributed matrix.
pub fn spgemm_bloom<S, L, R>(
    a: &L,
    b: &R,
    k_offset: Index,
    threads: usize,
) -> MmOutput<(S::Elem, u64)>
where
    S: Semiring,
    L: RowScan<S::Elem> + Sync,
    R: RowRead<S::Elem> + Sync,
{
    spgemm_bloom_with::<S, L, R>(a, b, k_offset, KernelPlan::new(threads))
}

/// [`spgemm_bloom`] under an explicit [`KernelPlan`].
pub fn spgemm_bloom_with<S, L, R>(
    a: &L,
    b: &R,
    k_offset: Index,
    plan: KernelPlan<'_, (S::Elem, u64)>,
) -> MmOutput<(S::Elem, u64)>
where
    S: Semiring,
    L: RowScan<S::Elem> + Sync,
    R: RowRead<S::Elem> + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let combine = |(v1, b1): (S::Elem, u64), (v2, b2): (S::Elem, u64)| (S::add(v1, v2), b1 | b2);
    run_scheduled(
        plan,
        nrows,
        ncols,
        u64::MAX,
        || stored_row_weights(a, b),
        |ws, range| {
            a.scan_row_range(
                range.start as Index,
                range.end as Index,
                |i, acols, avals| {
                    let est = row_flop_bound(b, acols);
                    ws.out.flops += est;
                    ws.begin_row(ncols, est);
                    for (&k, &av) in acols.iter().zip(avals) {
                        let bit = crate::bloom::bloom_bit(k + k_offset);
                        let (bcols, bvals) = b.row(k);
                        for (&j, &bv) in bcols.iter().zip(bvals) {
                            ws.scatter(j, (S::mul(av, bv), bit), combine);
                        }
                    }
                    ws.finish_row(i);
                },
            );
        },
    )
}

/// Structure-only SpGEMM: computes the *pattern* of `A · B` together with the
/// Bloom bitfield of contributing inner indices, never touching values.
///
/// This is the `COMPUTE_PATTERN` kernel of the general dynamic algorithm
/// (Section V-B): "we do not require the values of C* for our algorithm;
/// computing the sparsity structure of C* is enough". Works across operand
/// value types because only structure is read.
pub fn spgemm_pattern<VA, VB, L, R>(a: &L, b: &R, k_offset: Index, threads: usize) -> MmOutput<u64>
where
    VA: Copy,
    VB: Copy,
    L: RowScan<VA> + Sync,
    R: RowRead<VB> + Sync,
{
    spgemm_pattern_with(a, b, k_offset, KernelPlan::new(threads))
}

/// [`spgemm_pattern`] under an explicit [`KernelPlan`].
pub fn spgemm_pattern_with<VA, VB, L, R>(
    a: &L,
    b: &R,
    k_offset: Index,
    plan: KernelPlan<'_, u64>,
) -> MmOutput<u64>
where
    VA: Copy,
    VB: Copy,
    L: RowScan<VA> + Sync,
    R: RowRead<VB> + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    run_scheduled(
        plan,
        nrows,
        ncols,
        u64::MAX,
        || stored_row_weights(a, b),
        |ws, range| {
            a.scan_row_range(range.start as Index, range.end as Index, |i, acols, _| {
                let est = row_flop_bound(b, acols);
                ws.out.flops += est;
                ws.begin_row(ncols, est);
                for &k in acols {
                    let bit = crate::bloom::bloom_bit(k + k_offset);
                    let (bcols, _) = b.row(k);
                    for &j in bcols {
                        ws.scatter(j, bit, |x, y| x | y);
                    }
                }
                ws.finish_row(i);
            });
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::dense::Dense;
    use crate::dhb::DhbMatrix;
    use crate::semiring::{MinPlus, U64Plus};
    use crate::triple::Triple;
    use dspgemm_util::rng::{Rng, SplitMix64};

    fn random_triples(
        rng: &mut SplitMix64,
        nrows: Index,
        ncols: Index,
        n: usize,
    ) -> Vec<Triple<u64>> {
        (0..n)
            .map(|_| {
                Triple::new(
                    rng.gen_range(nrows as u64) as Index,
                    rng.gen_range(ncols as u64) as Index,
                    rng.gen_range(10) + 1,
                )
            })
            .collect()
    }

    #[test]
    fn tiny_known_product() {
        // A = [1 2; 0 3], B = [4 0; 5 6] -> C = [14 12; 15 18].
        let a = Csr::from_triples::<U64Plus>(
            2,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 1, 2),
                Triple::new(1, 1, 3),
            ],
        );
        let b = Csr::from_triples::<U64Plus>(
            2,
            2,
            vec![
                Triple::new(0, 0, 4),
                Triple::new(1, 0, 5),
                Triple::new(1, 1, 6),
            ],
        );
        let out = spgemm::<U64Plus, _, _>(&a, &b, 1);
        let c = out.result.to_triples();
        assert_eq!(
            c,
            vec![
                Triple::new(0, 0, 14),
                Triple::new(0, 1, 12),
                Triple::new(1, 0, 15),
                Triple::new(1, 1, 18),
            ]
        );
        // flops: row0 scans B rows 0 (1 entry) and 1 (2 entries) = 3; row1
        // scans B row 1 (2 entries) = 2.
        assert_eq!(out.flops, 5);
    }

    #[test]
    fn matches_dense_reference_u64() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10 {
            let a_t = random_triples(&mut rng, 20, 30, 60);
            let b_t = random_triples(&mut rng, 30, 25, 80);
            let a = Csr::from_triples::<U64Plus>(20, 30, a_t.clone());
            let b = Csr::from_triples::<U64Plus>(30, 25, b_t.clone());
            let da = Dense::from_triples::<U64Plus>(20, 30, &a_t);
            let db = Dense::from_triples::<U64Plus>(30, 25, &b_t);
            let expect = da.matmul::<U64Plus>(&db);
            let got = spgemm::<U64Plus, _, _>(&a, &b, 3);
            assert_eq!(Dense::from_dcsr::<U64Plus>(&got.result), expect);
        }
    }

    #[test]
    fn min_plus_semiring_product() {
        // Shortest 2-hop paths.
        let inf = f64::INFINITY;
        let a = Csr::from_triples::<MinPlus>(
            3,
            3,
            vec![
                Triple::new(0, 1, 1.0),
                Triple::new(1, 2, 2.0),
                Triple::new(0, 2, 10.0),
            ],
        );
        let out = spgemm::<MinPlus, _, _>(&a, &a, 1);
        // Path 0->1->2 has length 3 (beats nothing structurally: entry (0,2)
        // of A^2 is min over k of a0k + ak2 = a01 + a12 = 3).
        let c = Dense::from_dcsr::<MinPlus>(&out.result);
        assert_eq!(c.get(0, 2), 3.0);
        assert_eq!(c.get(0, 0), inf);
    }

    #[test]
    fn dcsr_times_dhb_hypersparse_left() {
        // The Algorithm-1 shape: hypersparse A* (DCSR) times dynamic B (DHB).
        let mut rng = SplitMix64::new(11);
        let a_t = random_triples(&mut rng, 1000, 50, 15); // hypersparse
        let b_t = random_triples(&mut rng, 50, 40, 300);
        let a = Dcsr::from_triples::<U64Plus>(1000, 50, a_t.clone());
        let mut b = DhbMatrix::new(50, 40);
        for t in &b_t {
            b.add_entry::<U64Plus>(t.row, t.col, t.val);
        }
        let got = spgemm::<U64Plus, _, _>(&a, &b, 2);
        let expect = Dense::from_triples::<U64Plus>(1000, 50, &a_t)
            .matmul::<U64Plus>(&Dense::from_triples::<U64Plus>(50, 40, &b_t));
        assert_eq!(Dense::from_dcsr::<U64Plus>(&got.result), expect);
    }

    #[test]
    fn empty_operands() {
        let a: Csr<u64> = Csr::empty(4, 5);
        let b: Csr<u64> = Csr::empty(5, 6);
        let out = spgemm::<U64Plus, _, _>(&a, &b, 2);
        assert_eq!(out.result.nnz(), 0);
        assert_eq!(out.flops, 0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a: Csr<u64> = Csr::empty(4, 5);
        let b: Csr<u64> = Csr::empty(6, 6);
        let _ = spgemm::<U64Plus, _, _>(&a, &b, 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = SplitMix64::new(13);
        let a_t = random_triples(&mut rng, 200, 200, 2000);
        let b_t = random_triples(&mut rng, 200, 200, 2000);
        let a = Csr::from_triples::<U64Plus>(200, 200, a_t);
        let b = Csr::from_triples::<U64Plus>(200, 200, b_t);
        let seq = spgemm::<U64Plus, _, _>(&a, &b, 1);
        let par = spgemm::<U64Plus, _, _>(&a, &b, 4);
        assert_eq!(seq.result, par.result);
        assert_eq!(seq.flops, par.flops);
    }

    #[test]
    fn bloom_bits_track_contributing_k() {
        // A row 0 has entries at k=1 and k=65; both contribute to output
        // column 0. Bits (1 % 64) and (65 % 64) coincide -> single bit.
        let a = Csr::from_triples::<U64Plus>(
            1,
            100,
            vec![
                Triple::new(0, 1, 1),
                Triple::new(0, 65, 1),
                Triple::new(0, 2, 1),
            ],
        );
        let b = Csr::from_triples::<U64Plus>(
            100,
            1,
            vec![
                Triple::new(1, 0, 1),
                Triple::new(65, 0, 1),
                Triple::new(2, 0, 1),
            ],
        );
        let out = spgemm_bloom::<U64Plus, _, _>(&a, &b, 0, 1);
        let triples = out.result.to_triples();
        assert_eq!(triples.len(), 1);
        let (val, bloom) = triples[0].val;
        assert_eq!(val, 3);
        assert_eq!(bloom, (1u64 << 1) | (1u64 << 2)); // bits 1 (k=1,65) and 2 (k=2)
    }

    #[test]
    fn bloom_k_offset_shifts_bits() {
        let a = Csr::from_triples::<U64Plus>(1, 4, vec![Triple::new(0, 0, 1)]);
        let b = Csr::from_triples::<U64Plus>(4, 1, vec![Triple::new(0, 0, 1)]);
        let out0 = spgemm_bloom::<U64Plus, _, _>(&a, &b, 0, 1);
        let out5 = spgemm_bloom::<U64Plus, _, _>(&a, &b, 5, 1);
        assert_eq!(out0.result.to_triples()[0].val.1, 1 << 0);
        assert_eq!(out5.result.to_triples()[0].val.1, 1 << 5);
    }

    #[test]
    fn pattern_matches_bloom_structure() {
        let mut rng = SplitMix64::new(21);
        let a_t = random_triples(&mut rng, 60, 60, 400);
        let b_t = random_triples(&mut rng, 60, 60, 400);
        let a = Csr::from_triples::<U64Plus>(60, 60, a_t);
        let b = Csr::from_triples::<U64Plus>(60, 60, b_t);
        let fused = spgemm_bloom::<U64Plus, _, _>(&a, &b, 3, 2);
        let pattern = spgemm_pattern(&a, &b, 3, 2);
        assert_eq!(pattern.result, fused.result.map(|(_, bits)| bits));
        assert_eq!(pattern.flops, fused.flops);
    }

    #[test]
    fn dcsr_row_reader_as_right_operand() {
        // The A·B* shape of Algorithm 1: DHB left, hypersparse DCSR right.
        let mut rng = SplitMix64::new(23);
        let a_t = random_triples(&mut rng, 40, 500, 200);
        let b_t = random_triples(&mut rng, 500, 30, 25); // hypersparse
        let mut a = DhbMatrix::new(40, 500);
        for t in &a_t {
            a.add_entry::<U64Plus>(t.row, t.col, t.val);
        }
        let b = Dcsr::from_triples::<U64Plus>(500, 30, b_t.clone());
        let got = spgemm::<U64Plus, _, _>(&a, &b.row_reader(), 2);
        let da = Dense::from_sparse::<U64Plus, _>(&a);
        let db = Dense::from_triples::<U64Plus>(500, 30, &b_t);
        assert_eq!(
            Dense::from_dcsr::<U64Plus>(&got.result),
            da.matmul::<U64Plus>(&db)
        );
    }

    #[test]
    fn bloom_values_match_plain_product() {
        let mut rng = SplitMix64::new(17);
        let a_t = random_triples(&mut rng, 50, 50, 300);
        let b_t = random_triples(&mut rng, 50, 50, 300);
        let a = Csr::from_triples::<U64Plus>(50, 50, a_t);
        let b = Csr::from_triples::<U64Plus>(50, 50, b_t);
        let plain = spgemm::<U64Plus, _, _>(&a, &b, 2);
        let fused = spgemm_bloom::<U64Plus, _, _>(&a, &b, 0, 2);
        assert_eq!(plain.flops, fused.flops);
        assert_eq!(plain.result, fused.result.map(|(v, _)| v));
    }
}
