//! Dense reference matrices — the oracle for tests and property checks.
//!
//! Never used on a fast path: `O(n²)` storage, `O(n³)` multiplication, but
//! trivially correct, which is exactly what the equivalence tests need.

use crate::dcsr::Dcsr;
use crate::semiring::Semiring;
use crate::triple::Triple;
use crate::{Index, RowScan};

/// A dense matrix over a semiring's element type; absent entries hold
/// `S::zero()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<V> {
    nrows: Index,
    ncols: Index,
    data: Vec<V>,
}

impl<V: Copy + PartialEq + std::fmt::Debug> Dense<V> {
    /// A zero-filled matrix (with the semiring's zero).
    pub fn zeros<S: Semiring<Elem = V>>(nrows: Index, ncols: Index) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![S::zero(); nrows as usize * ncols as usize],
        }
    }

    /// Builds from triples; duplicates combine with the semiring addition.
    pub fn from_triples<S: Semiring<Elem = V>>(
        nrows: Index,
        ncols: Index,
        triples: &[Triple<V>],
    ) -> Self {
        let mut m = Self::zeros::<S>(nrows, ncols);
        for t in triples {
            let cur = m.get(t.row, t.col);
            m.set(t.row, t.col, S::add(cur, t.val));
        }
        m
    }

    /// Builds from any sparse row-scannable matrix.
    pub fn from_sparse<S: Semiring<Elem = V>, M: RowScan<V>>(m: &M) -> Self {
        let mut d = Self::zeros::<S>(m.nrows(), m.ncols());
        m.scan_rows(|r, cols, vals| {
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(r, c, v);
            }
        });
        d
    }

    /// Builds from a DCSR (values overwrite zeros; pattern preserved).
    pub fn from_dcsr<S: Semiring<Elem = V>>(m: &Dcsr<V>) -> Self {
        Self::from_sparse::<S, _>(m)
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: Index, c: Index) -> V {
        self.data[r as usize * self.ncols as usize + c as usize]
    }

    /// Sets entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: Index, c: Index, v: V) {
        self.data[r as usize * self.ncols as usize + c as usize] = v;
    }

    /// Reference `O(n³)` semiring matrix product.
    pub fn matmul<S: Semiring<Elem = V>>(&self, other: &Dense<V>) -> Dense<V> {
        assert_eq!(self.ncols, other.nrows, "inner dimension mismatch");
        let mut out = Self::zeros::<S>(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self.get(i, k);
                if a == S::zero() {
                    continue;
                }
                for j in 0..other.ncols {
                    let b = other.get(k, j);
                    if b == S::zero() {
                        continue;
                    }
                    let cur = out.get(i, j);
                    out.set(i, j, S::add(cur, S::mul(a, b)));
                }
            }
        }
        out
    }

    /// Reference element-wise addition.
    pub fn add<S: Semiring<Elem = V>>(&self, other: &Dense<V>) -> Dense<V> {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut out = self.clone();
        for i in 0..self.data.len() {
            out.data[i] = S::add(self.data[i], other.data[i]);
        }
        out
    }

    /// Positions where two matrices differ (for test diagnostics).
    pub fn diff(&self, other: &Dense<V>) -> Vec<(Index, Index, V, V)> {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut out = Vec::new();
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let (a, b) = (self.get(r, c), other.get(r, c));
                if a != b {
                    out.push((r, c, a, b));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, U64Plus};

    #[test]
    fn construction_and_access() {
        let m = Dense::from_triples::<U64Plus>(
            2,
            3,
            &[
                Triple::new(0, 1, 5),
                Triple::new(1, 2, 7),
                Triple::new(0, 1, 2),
            ],
        );
        assert_eq!(m.get(0, 1), 7); // duplicates add
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.get(0, 0), 0);
    }

    #[test]
    fn matmul_identity() {
        let eye = Dense::from_triples::<U64Plus>(
            3,
            3,
            &[
                Triple::new(0, 0, 1),
                Triple::new(1, 1, 1),
                Triple::new(2, 2, 1),
            ],
        );
        let m = Dense::from_triples::<U64Plus>(3, 3, &[Triple::new(0, 2, 4), Triple::new(2, 1, 9)]);
        assert_eq!(eye.matmul::<U64Plus>(&m), m);
        assert_eq!(m.matmul::<U64Plus>(&eye), m);
    }

    #[test]
    fn min_plus_zero_skip_correct() {
        // Ensure the zero-skip in matmul respects (min,+): zero = +inf.
        let a = Dense::from_triples::<MinPlus>(2, 2, &[Triple::new(0, 1, 1.0)]);
        let b = Dense::from_triples::<MinPlus>(2, 2, &[Triple::new(1, 0, 2.0)]);
        let c = a.matmul::<MinPlus>(&b);
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.get(1, 1), f64::INFINITY);
    }

    #[test]
    fn diff_reports_mismatches() {
        let a = Dense::from_triples::<U64Plus>(2, 2, &[Triple::new(0, 0, 1)]);
        let b = Dense::from_triples::<U64Plus>(2, 2, &[Triple::new(0, 0, 2)]);
        let d = a.diff(&b);
        assert_eq!(d, vec![(0, 0, 1, 2)]);
        assert!(a.diff(&a).is_empty());
    }
}
