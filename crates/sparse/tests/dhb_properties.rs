//! Property-based tests for the DHB dynamic storage: arbitrary operation
//! sequences must match a BTreeMap model, and the bulk construction path
//! must match per-entry insertion.
//!
//! Driven by the in-repo seeded generator (the workspace builds offline, so
//! the external `proptest` crate the seed used is unavailable); each property
//! runs `CASES` independently drawn inputs, reproducible from the case seed.

use dspgemm_sparse::dhb::{DhbMatrix, DhbRow};
use dspgemm_sparse::Index;
use dspgemm_util::rng::{Rng, SplitMix64};
use std::collections::BTreeMap;

const CASES: u64 = 48;

#[derive(Debug, Clone)]
enum Op {
    Set(Index, Index, u64),
    Remove(Index, Index),
    Combine(Index, Index, u64),
}

fn draw_op(rng: &mut SplitMix64, n: Index) -> Op {
    let r = rng.gen_range(n as u64) as Index;
    let c = rng.gen_range(n as u64) as Index;
    match rng.gen_range(3) {
        0 => Op::Set(r, c, rng.next_u64()),
        1 => Op::Remove(r, c),
        _ => Op::Combine(r, c, rng.gen_range(99) + 1),
    }
}

#[test]
fn dhb_matches_btreemap_model() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xD4B, case);
        let count = rng.gen_range(400) as usize;
        let ops: Vec<Op> = (0..count).map(|_| draw_op(&mut rng, 24)).collect();
        let mut dhb: DhbMatrix<u64> = DhbMatrix::new(24, 24);
        let mut model: BTreeMap<(Index, Index), u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Set(r, c, v) => {
                    dhb.set(r, c, v);
                    model.insert((r, c), v);
                }
                Op::Remove(r, c) => {
                    assert_eq!(dhb.remove(r, c), model.remove(&(r, c)), "case {case}");
                }
                Op::Combine(r, c, v) => {
                    dhb.combine_entry(r, c, v, |a, b| a.wrapping_add(b));
                    let new = match model.get(&(r, c)) {
                        Some(&old) => old.wrapping_add(v),
                        None => v,
                    };
                    model.insert((r, c), new);
                }
            }
            assert_eq!(dhb.nnz(), model.len(), "case {case}");
        }
        let got: Vec<((Index, Index), u64)> = dhb
            .to_sorted_triples()
            .into_iter()
            .map(|t| ((t.row, t.col), t.val))
            .collect();
        let expect: Vec<((Index, Index), u64)> = model.into_iter().collect();
        assert_eq!(got, expect, "case {case}");
    }
}

#[test]
fn fill_sorted_matches_per_entry_set() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xF111, case);
        let count = rng.gen_range(200) as usize;
        let mut entries: BTreeMap<u32, u64> = BTreeMap::new();
        for _ in 0..count {
            entries.insert(rng.gen_range(5000) as u32, rng.next_u64());
        }
        let cols: Vec<Index> = entries.keys().copied().collect();
        let vals: Vec<u64> = entries.values().copied().collect();
        let mut bulk: DhbRow<u64> = DhbRow::default();
        bulk.fill_sorted(&cols, &vals);
        let mut single: DhbRow<u64> = DhbRow::default();
        for (&c, &v) in cols.iter().zip(&vals) {
            single.set(c, v);
        }
        assert_eq!(bulk.len(), single.len(), "case {case}");
        for &c in &cols {
            assert_eq!(bulk.get(c), single.get(c), "case {case}");
        }
        // Lookups of absent columns agree too.
        for probe in [0u32, 1, 4999, 2500] {
            assert_eq!(bulk.get(probe), single.get(probe), "case {case}");
        }
    }
}

#[test]
fn heavy_churn_preserves_membership() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xC802A, case);
        let count = 1 + rng.gen_range(299) as usize;
        let keys: Vec<u32> = (0..count).map(|_| rng.gen_range(64) as u32).collect();
        // Insert all, delete every other occurrence, verify final state.
        let mut row: DhbRow<u64> = DhbRow::default();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                row.set(k, i as u64);
                model.insert(k, i as u64);
            } else {
                let a = row.remove(k);
                let b = model.remove(&k);
                assert_eq!(a, b, "case {case}");
            }
        }
        for k in 0u32..64 {
            assert_eq!(row.get(k), model.get(&k).copied(), "case {case}");
        }
    }
}
