//! Property-based tests for the DHB dynamic storage: arbitrary operation
//! sequences must match a BTreeMap model, and the bulk construction path
//! must match per-entry insertion.

use dspgemm_sparse::dhb::{DhbMatrix, DhbRow};
use dspgemm_sparse::Index;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Set(Index, Index, u64),
    Remove(Index, Index),
    Combine(Index, Index, u64),
}

fn op_strategy(n: Index) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n, 0..n, any::<u64>()).prop_map(|(r, c, v)| Op::Set(r, c, v)),
        (0..n, 0..n).prop_map(|(r, c)| Op::Remove(r, c)),
        (0..n, 0..n, 1u64..100).prop_map(|(r, c, v)| Op::Combine(r, c, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dhb_matches_btreemap_model(ops in prop::collection::vec(op_strategy(24), 0..400)) {
        let mut dhb: DhbMatrix<u64> = DhbMatrix::new(24, 24);
        let mut model: BTreeMap<(Index, Index), u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Set(r, c, v) => {
                    dhb.set(r, c, v);
                    model.insert((r, c), v);
                }
                Op::Remove(r, c) => {
                    prop_assert_eq!(dhb.remove(r, c), model.remove(&(r, c)));
                }
                Op::Combine(r, c, v) => {
                    dhb.combine_entry(r, c, v, |a, b| a.wrapping_add(b));
                    let new = match model.get(&(r, c)) {
                        Some(&old) => old.wrapping_add(v),
                        None => v,
                    };
                    model.insert((r, c), new);
                }
            }
            prop_assert_eq!(dhb.nnz(), model.len());
        }
        let got: Vec<((Index, Index), u64)> = dhb
            .to_sorted_triples()
            .into_iter()
            .map(|t| ((t.row, t.col), t.val))
            .collect();
        let expect: Vec<((Index, Index), u64)> = model.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn fill_sorted_matches_per_entry_set(
        entries in prop::collection::btree_map(0u32..5000, any::<u64>(), 0..200),
    ) {
        let cols: Vec<Index> = entries.keys().copied().collect();
        let vals: Vec<u64> = entries.values().copied().collect();
        let mut bulk: DhbRow<u64> = DhbRow::default();
        bulk.fill_sorted(&cols, &vals);
        let mut single: DhbRow<u64> = DhbRow::default();
        for (&c, &v) in cols.iter().zip(&vals) {
            single.set(c, v);
        }
        prop_assert_eq!(bulk.len(), single.len());
        for &c in &cols {
            prop_assert_eq!(bulk.get(c), single.get(c));
        }
        // Lookups of absent columns agree too.
        for probe in [0u32, 1, 4999, 2500] {
            prop_assert_eq!(bulk.get(probe), single.get(probe));
        }
    }

    #[test]
    fn heavy_churn_preserves_membership(
        keys in prop::collection::vec(0u32..64, 1..300),
    ) {
        // Insert all, delete every other occurrence, verify final state.
        let mut row: DhbRow<u64> = DhbRow::default();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                row.set(k, i as u64);
                model.insert(k, i as u64);
            } else {
                let a = row.remove(k);
                let b = model.remove(&k);
                prop_assert_eq!(a, b);
            }
        }
        for k in 0u32..64 {
            prop_assert_eq!(row.get(k), model.get(&k).copied());
        }
    }
}
