//! Wire-codec property tests over the payload types the transport actually
//! carries: seeded-random round-trips (encode → decode must reproduce the
//! value and consume every byte), degenerate matrix blocks, and corruption
//! rejection. Deterministic via the in-repo `SplitMix64` — no external
//! property-testing machinery.

use dspgemm_sparse::semiring::U64Plus;
use dspgemm_sparse::{Csr, Dcsr, Index, Triple};
use dspgemm_util::rng::{Rng, SplitMix64};
use dspgemm_util::{decode_from_slice, encode_to_vec, WireDecode, WireEncode, WireSize};

fn roundtrip<T>(value: &T) -> T
where
    T: WireEncode + WireDecode,
{
    let bytes = encode_to_vec(value);
    decode_from_slice::<T>(&bytes).expect("decode what we encoded")
}

/// Encoded length must equal the metered `WireSize` for the flat payload
/// types (what keeps logical metering equal to real socket bytes).
fn assert_sized_roundtrip<T>(value: &T)
where
    T: WireEncode + WireDecode + WireSize + PartialEq + std::fmt::Debug,
{
    let bytes = encode_to_vec(value);
    assert_eq!(
        bytes.len() as u64,
        value.wire_bytes(),
        "encoded length != metered wire size"
    );
    assert_eq!(&roundtrip(value), value);
}

fn random_triples(rng: &mut SplitMix64, n: usize, nrows: u32, ncols: u32) -> Vec<Triple<u64>> {
    (0..n)
        .map(|_| {
            Triple::new(
                rng.gen_range(nrows.max(1) as u64) as Index,
                rng.gen_range(ncols.max(1) as u64) as Index,
                rng.next_u64(),
            )
        })
        .collect()
}

#[test]
fn generated_tuples_roundtrip() {
    let mut rng = SplitMix64::new(0x71E5);
    for _ in 0..200 {
        assert_sized_roundtrip(&(rng.next_u64(), rng.next_u64() as u32));
        assert_sized_roundtrip(&(
            rng.next_u64(),
            f64::from_bits(0x3FF0_0000_0000_0000 | (rng.next_u64() >> 12)),
            rng.gen_range(2) == 1,
        ));
        let v: Vec<(u32, u64)> = (0..rng.gen_range(17))
            .map(|_| (rng.next_u64() as u32, rng.next_u64()))
            .collect();
        assert_sized_roundtrip(&v);
        let opt = if rng.gen_range(2) == 0 {
            None
        } else {
            Some((rng.next_u64(), rng.next_u64()))
        };
        assert_sized_roundtrip(&opt);
    }
}

#[test]
fn extreme_scalar_values_roundtrip() {
    for v in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 48, (1 << 48) - 1] {
        assert_sized_roundtrip(&v);
    }
    for v in [i64::MIN, -1, 0, i64::MAX] {
        assert_sized_roundtrip(&v);
    }
    for v in [f64::MIN, -0.0, 0.0, f64::MAX, f64::INFINITY] {
        assert_sized_roundtrip(&v);
    }
    // NaN round-trips bit-exactly even though it is not `==` to itself.
    let bytes = encode_to_vec(&f64::NAN);
    assert_eq!(
        decode_from_slice::<f64>(&bytes).unwrap().to_bits(),
        f64::NAN.to_bits()
    );
}

#[test]
fn generated_triples_roundtrip() {
    let mut rng = SplitMix64::new(0x7219);
    for case in 0..50 {
        let triples = random_triples(&mut rng, case * 7 % 400, 1000, 1000);
        assert_sized_roundtrip(&triples);
    }
}

#[test]
fn csr_blocks_roundtrip_including_degenerate() {
    let mut rng = SplitMix64::new(0xC5A);
    // Degenerate shapes: no rows, no cols, no nnz, single cell.
    for c in [
        Csr::<u64>::empty(0, 0),
        Csr::empty(0, 17),
        Csr::empty(17, 0),
        Csr::empty(1000, 1000),
        Csr::from_triples::<U64Plus>(1, 1, vec![Triple::new(0, 0, 42)]),
    ] {
        assert_eq!(roundtrip(&c), c);
    }
    // Random blocks, including tall/thin and wide/flat.
    for case in 0..30 {
        let (nr, nc) = match case % 3 {
            0 => (1 + rng.gen_range(64) as u32, 1 + rng.gen_range(64) as u32),
            1 => (1 + rng.gen_range(2000) as u32, 1 + rng.gen_range(3) as u32),
            _ => (1 + rng.gen_range(3) as u32, 1 + rng.gen_range(2000) as u32),
        };
        let n = rng.gen_range(300) as usize;
        let c = Csr::from_triples::<U64Plus>(nr, nc, random_triples(&mut rng, n, nr, nc));
        let rt = roundtrip(&c);
        assert_eq!(rt, c);
        rt.validate().expect("decoded block passes validation");
    }
}

#[test]
fn dcsr_blocks_roundtrip_including_degenerate() {
    let mut rng = SplitMix64::new(0xDC5);
    for d in [
        Dcsr::<u64>::empty(0, 0),
        Dcsr::empty(0, 9),
        Dcsr::empty(9, 0),
        Dcsr::empty(1 << 20, 1 << 20),
    ] {
        assert_eq!(roundtrip(&d), d);
    }
    for _ in 0..30 {
        // Sparse row support: most rows absent — DCSR's reason to exist.
        let (nr, nc) = (1 << 16, 1 + rng.gen_range(512) as u32);
        let n = rng.gen_range(200) as usize;
        let d = Dcsr::from_triples::<U64Plus>(nr, nc, random_triples(&mut rng, n, nr, nc));
        assert_eq!(roundtrip(&d), d);
    }
}

#[test]
fn csr_decode_rejects_corrupted_invariants() {
    let good = Csr::from_triples::<U64Plus>(
        4,
        4,
        vec![
            Triple::new(0, 1, 5u64),
            Triple::new(2, 0, 7),
            Triple::new(3, 3, 9),
        ],
    );
    let bytes = encode_to_vec(&good);
    assert!(decode_from_slice::<Csr<u64>>(&bytes).is_ok());
    // Flip every single byte; decode must *never* produce an invalid block
    // (it either errors or yields a value passing `validate`).
    for i in 0..bytes.len() {
        for delta in [1u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[i] = corrupt[i].wrapping_add(delta);
            if let Ok(c) = decode_from_slice::<Csr<u64>>(&corrupt) {
                c.validate().expect("decoder accepted an invalid block");
            }
        }
    }
}

#[test]
fn truncation_never_panics_and_always_errors() {
    let mut rng = SplitMix64::new(0x7A11);
    let c = Csr::from_triples::<U64Plus>(8, 8, random_triples(&mut rng, 30, 8, 8));
    let bytes = encode_to_vec(&c);
    for cut in 0..bytes.len() {
        assert!(
            decode_from_slice::<Csr<u64>>(&bytes[..cut]).is_err(),
            "truncated at {cut} of {} decoded successfully",
            bytes.len()
        );
    }
    // Trailing garbage is rejected too (a frame must be consumed exactly).
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_from_slice::<Csr<u64>>(&padded).is_err());
}
