//! Copy-elimination invariants, end to end: the shared (`Arc`) collectives
//! and the flat-buffer SpGEMM must produce bit-identical results and
//! identical wire-byte meters versus the clone-based paths, and the hot
//! pipelines must perform zero payload deep-clones — across p ∈ {1, 4, 9}
//! and both evaluated semirings.

use dspgemm::core::dyn_algebraic::apply_algebraic_updates;
use dspgemm::core::dyn_general::{apply_general_updates, GeneralUpdates};
use dspgemm::core::spmv::{spmv, DistVec};
use dspgemm::core::summa::{summa, summa_bloom};
use dspgemm::core::{DistMat, Grid};
use dspgemm::sparse::local_mm::spgemm;
use dspgemm::sparse::semiring::{MinPlus, Semiring, U64Plus};
use dspgemm::sparse::{Csr, Index, RowScan, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;

fn random_triples<S: Semiring>(
    seed: u64,
    n: Index,
    count: usize,
    val: impl Fn(u64) -> S::Elem,
) -> Vec<Triple<S::Elem>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                val(rng.gen_range(9) + 1),
            )
        })
        .collect()
}

/// A clone-based sparse SUMMA replica: identical round structure and local
/// kernel to the library's [`summa`], but broadcasting with the legacy
/// deep-cloning `bcast`. The reference arm for meter-parity checks.
fn summa_cloned<S: Semiring>(
    grid: &Grid,
    a: &DistMat<S::Elem>,
    b: &DistMat<S::Elem>,
) -> DistMat<S::Elem> {
    let q = grid.q();
    let (i, j) = grid.coords();
    let mut c = DistMat::empty(grid, a.info().nrows, b.info().ncols);
    let a_local: Csr<S::Elem> = a.block_csr();
    let b_local: Csr<S::Elem> = b.block_csr();
    for k in 0..q {
        let a_blk: Csr<S::Elem> = grid
            .row_comm()
            .bcast(k, if j == k { Some(a_local.clone()) } else { None });
        let b_blk: Csr<S::Elem> = grid
            .col_comm()
            .bcast(k, if i == k { Some(b_local.clone()) } else { None });
        let partial = spgemm::<S, _, _>(&a_blk, &b_blk, 1);
        let block = c.block_mut();
        partial.result.scan_rows(|r, cols, vals| {
            for (&cc, &v) in cols.iter().zip(vals) {
                block.add_entry::<S>(r, cc, v);
            }
        });
    }
    c
}

fn check_summa_parity<S: Semiring>(seed: u64, val: impl Fn(u64) -> S::Elem + Send + Sync + Copy) {
    let n: Index = 30;
    for p in [1usize, 4, 9] {
        let arm = |shared: bool| {
            dspgemm_mpi::run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = if comm.rank() == 0 {
                    random_triples::<S>(seed, n, 150, val)
                } else {
                    vec![]
                };
                let a = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
                let b = DistMat::from_global_triples(&grid, n, n, feed, 1, &mut timer);
                let c = if shared {
                    summa::<S>(&grid, &a, &b, 1, &mut timer).0
                } else {
                    summa_cloned::<S>(&grid, &a, &b)
                };
                c.gather_to_root(comm)
            })
        };
        let cloned = arm(false);
        let shared = arm(true);
        // Bit-identical product, identical wire meters (bytes and messages,
        // every rank, every category).
        assert_eq!(cloned.results[0], shared.results[0], "p={p}");
        assert_eq!(cloned.stats.volume(), shared.stats.volume(), "p={p}");
        // The shared path performed zero payload deep-clones; the clone-based
        // replica paid √p rounds × 2 broadcasts × (tree clones) for p > 1.
        assert_eq!(shared.payload_clones, 0, "p={p}");
        if p > 1 {
            assert!(cloned.payload_clones > 0, "p={p}");
        }
    }
}

#[test]
fn summa_shared_matches_clone_replica_u64_plus() {
    check_summa_parity::<U64Plus>(11, |v| v);
}

#[test]
fn summa_shared_matches_clone_replica_min_plus() {
    check_summa_parity::<MinPlus>(13, |v| v as f64);
}

/// The full dynamic-update pipelines run zero-copy on every grid and both
/// semirings, while still agreeing bit-identically with a static
/// recomputation from scratch.
#[test]
fn algebraic_update_pipeline_is_zero_copy_and_exact() {
    let n: Index = 24;
    for p in [1usize, 4, 9] {
        let out = dspgemm_mpi::run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = if comm.rank() == 0 {
                random_triples::<U64Plus>(21, n, 100, |v| v)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed, 1, &mut timer);
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            for round in 0..2u64 {
                let ups = random_triples::<U64Plus>(50 + round + comm.rank() as u64, n, 12, |v| v);
                apply_algebraic_updates::<U64Plus>(
                    &grid,
                    &mut a,
                    &mut b,
                    &mut c,
                    ups,
                    vec![],
                    1,
                    &mut timer,
                );
            }
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            c.gather_to_root(comm) == c_static.gather_to_root(comm)
        });
        assert!(out.results.iter().all(|&eq| eq), "p={p}");
        assert_eq!(out.payload_clones, 0, "p={p}: pipeline deep-cloned");
    }
}

#[test]
fn general_update_pipeline_is_zero_copy_and_exact_min_plus() {
    let n: Index = 20;
    for p in [1usize, 4, 9] {
        let out = dspgemm_mpi::run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = if comm.rank() == 0 {
                random_triples::<MinPlus>(31, n, 80, |v| v as f64)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed, 1, &mut timer);
            let (mut c, mut f, _) = summa_bloom::<MinPlus>(&grid, &a, &b, 1, &mut timer);
            // Value increases (min-plus-incompatible) plus deletions.
            let a_cur = a.gather_to_root(comm);
            let upd = if comm.rank() == 0 {
                let cur = a_cur.unwrap();
                let mut upd = GeneralUpdates::new();
                for (idx, t) in cur.iter().enumerate() {
                    if idx % 3 == 0 {
                        upd.sets.push(Triple::new(t.row, t.col, t.val + 7.0));
                    } else if idx % 3 == 1 {
                        upd.deletes.push((t.row, t.col));
                    }
                }
                upd
            } else {
                GeneralUpdates::new()
            };
            apply_general_updates::<MinPlus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                &mut f,
                upd,
                GeneralUpdates::new(),
                1,
                &mut timer,
            );
            let (c_static, _) = summa::<MinPlus>(&grid, &a, &b, 1, &mut timer);
            c.gather_to_root(comm) == c_static.gather_to_root(comm)
        });
        assert!(out.results.iter().all(|&eq| eq), "p={p}");
        assert_eq!(out.payload_clones, 0, "p={p}: pipeline deep-cloned");
    }
}

/// SpMV's reduce + zero-copy broadcast-back agrees value- and meter-wise
/// with a clone-based allreduce replica of the same aggregation.
#[test]
fn spmv_aggregation_matches_clone_based_allreduce() {
    let n: Index = 37;
    for p in [1usize, 4, 9] {
        let arm = |shared: bool| {
            dspgemm_mpi::run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = if comm.rank() == 0 {
                    random_triples::<U64Plus>(41, n, 200, |v| v)
                } else {
                    vec![]
                };
                let a = DistMat::from_global_triples(&grid, n, n, feed, 1, &mut timer);
                let x = DistVec::from_fn(&grid, n, |i| (i as u64) % 5 + 1);
                if shared {
                    let (y, _) = spmv::<U64Plus>(&grid, &a, &x, 1);
                    y.to_global(&grid)
                } else {
                    // Replica: same local multiply, aggregation via the
                    // legacy clone-based allreduce (reduce + bcast, the
                    // pre-zero-copy wire pattern).
                    let mut y_part = vec![0u64; a.info().local_rows() as usize];
                    a.block().scan_rows(|r, cols, vals| {
                        for (&c, &v) in cols.iter().zip(vals) {
                            y_part[r as usize] += v * x.seg()[c as usize];
                        }
                    });
                    let reduced = grid.row_comm().reduce(0, y_part, |mut acc, other| {
                        for (a_el, b_el) in acc.iter_mut().zip(other) {
                            *a_el += b_el;
                        }
                        acc
                    });
                    let seg = grid.row_comm().bcast(0, reduced);
                    // Row-aligned: the grid column's ranks hold the blocks.
                    grid.col_comm()
                        .allgather(seg)
                        .into_iter()
                        .flatten()
                        .collect::<Vec<u64>>()
                }
            })
        };
        let cloned = arm(false);
        let shared = arm(true);
        assert_eq!(cloned.results, shared.results, "p={p}");
        assert_eq!(cloned.stats.volume(), shared.stats.volume(), "p={p}");
        assert_eq!(shared.payload_clones, 0, "p={p}");
    }
}
