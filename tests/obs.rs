//! Observability invariants, end to end: histogram merges must be
//! order-insensitive across simulated ranks (so registry aggregation never
//! depends on rank arrival order), `PhaseTimer` merges must carry every
//! counter class (phases, overlapped communication, per-thread flops), and
//! a traced engine run must export a schema-valid Chrome trace containing
//! the span taxonomy the docs promise.

use dspgemm::core::{DistMat, DynSpGemm, Grid};
use dspgemm::obs::{Histogram, Registry};
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::{Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;
use std::sync::Mutex;
use std::time::Duration;

/// The tracer is process-global; tests that toggle it serialise here.
fn tracer_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                rng.gen_range(5) + 1,
            )
        })
        .collect()
}

/// Each simulated rank records its own latency samples into a local
/// histogram; merging the per-rank histograms must be associative and
/// commutative — identical counts, sums, extrema, and quantiles for every
/// merge order.
#[test]
fn histogram_merge_is_associative_and_commutative_across_ranks() {
    let out = dspgemm::mpi::run(4, |comm| {
        let mut h = Histogram::new();
        let mut rng = SplitMix64::new(0xC0FFEE ^ comm.rank() as u64);
        for _ in 0..1000 {
            // Spread samples across many octaves (1 ns .. ~1 s).
            let v = rng.gen_range(1 << (10 + 2 * comm.rank() as u64)) + 1;
            h.record(v);
        }
        h
    });
    let ranks: Vec<Histogram> = out.results;

    // Left fold 0..3, right-ish fold, and a permuted fold.
    let fold = |order: &[usize]| {
        let mut acc = Histogram::new();
        for &i in order {
            acc.merge(&ranks[i]);
        }
        acc
    };
    let a = fold(&[0, 1, 2, 3]);
    let b = fold(&[3, 2, 1, 0]);
    let c = {
        // Associativity: (r0 + r1) + (r2 + r3) pairwise.
        let mut left = Histogram::new();
        left.merge(&ranks[0]);
        left.merge(&ranks[1]);
        let mut right = Histogram::new();
        right.merge(&ranks[2]);
        right.merge(&ranks[3]);
        let mut acc = Histogram::new();
        acc.merge(&right);
        acc.merge(&left);
        acc
    };
    for m in [&b, &c] {
        assert_eq!(a.count(), m.count());
        assert_eq!(a.sum(), m.sum());
        assert_eq!(a.min(), m.min());
        assert_eq!(a.max(), m.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), m.quantile(q), "quantile {q} diverged");
        }
        assert_eq!(a.nonzero_buckets(), m.nonzero_buckets());
    }
}

/// The histogram quantile must agree with the sort-based estimator it
/// replaced (`samples[round((n-1)·q)]`) within the documented sub-bucket
/// error (≤ ~3.2% relative).
#[test]
fn histogram_quantiles_match_sorted_samples_within_bucket_error() {
    let mut rng = SplitMix64::new(42);
    let samples: Vec<u64> = (0..5000).map(|_| rng.gen_range(1 << 40) + 1).collect();
    let mut h = Histogram::new();
    let mut sorted = samples.clone();
    for &v in &samples {
        h.record(v);
    }
    sorted.sort_unstable();
    for q in [0.01, 0.5, 0.9, 0.99, 0.999] {
        let exact = sorted[((sorted.len() - 1) as f64 * q).round() as usize] as f64;
        let approx = h.quantile(q) as f64;
        let rel = (approx - exact).abs() / exact;
        assert!(rel <= 0.032, "q={q}: {approx} vs exact {exact} (rel {rel})");
    }
}

/// `PhaseTimer::merge` (sum) and `merge_max` (critical path) must carry
/// all three counter classes: phase nanoseconds, overlapped communication
/// nanoseconds, and per-thread flops.
#[test]
fn phase_timer_merge_carries_overlap_and_flop_counters() {
    let mut a = PhaseTimer::new();
    a.add("local_mult", Duration::from_nanos(100));
    a.add_overlapped("send_recv", Duration::from_nanos(40));
    a.add_thread_flops(&[10, 20]);
    let mut b = PhaseTimer::new();
    b.add("local_mult", Duration::from_nanos(50));
    b.add_overlapped("send_recv", Duration::from_nanos(60));
    b.add_thread_flops(&[5, 30, 7]);

    let mut sum = PhaseTimer::new();
    sum.merge(&a);
    sum.merge(&b);
    assert_eq!(sum.get("local_mult"), Duration::from_nanos(150));
    assert_eq!(sum.comm_overlapped("send_recv"), Duration::from_nanos(100));
    assert_eq!(sum.thread_flops(), &[15, 50, 7]);

    let mut crit = PhaseTimer::new();
    crit.merge_max(&a);
    crit.merge_max(&b);
    assert_eq!(crit.get("local_mult"), Duration::from_nanos(100));
    assert_eq!(crit.comm_overlapped("send_recv"), Duration::from_nanos(60));
    assert_eq!(crit.thread_flops(), &[10, 30, 7]);

    // The registry bridge exports every class under the given prefix.
    let reg = Registry::new();
    sum.export_into(&reg, "rank0");
    assert_eq!(reg.counter("rank0.phase_ns.local_mult"), 150);
    assert_eq!(reg.counter("rank0.overlapped_ns.send_recv"), 100);
    assert_eq!(reg.counter("rank0.thread_flops.1"), 50);
}

/// A traced dynamic-SpGEMM run must export a schema-valid Chrome trace
/// whose events cover the documented span taxonomy: per-rank comm spans
/// with byte counts, per-round compute spans, engine batch spans, and one
/// `epoch_publish` instant per published epoch — all attributed to the
/// rank threads that produced them.
#[test]
fn traced_engine_run_exports_valid_chrome_trace() {
    let _g = tracer_lock();
    let _ = dspgemm::obs::drain(); // events from other tests are not ours
    dspgemm::obs::set_enabled(true);
    let n: Index = 24;
    dspgemm::mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let feed = |s: u64| {
            if comm.rank() == 0 {
                random_triples(s, n, 60)
            } else {
                vec![]
            }
        };
        let a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
        let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
        eng.apply_algebraic(&grid, random_triples(10 + comm.rank() as u64, n, 8), vec![]);
        eng.snapshot();
    });
    dspgemm::obs::set_enabled(false);
    let events = dspgemm::obs::drain();

    let has = |phase: &str, name: &str| events.iter().any(|e| e.phase == phase && e.name == name);
    assert!(has("round", "round"), "per-round compute spans missing");
    assert!(has("engine", "redistribute"), "redistribute span missing");
    assert!(has("engine", "apply_algebraic"), "apply-batch span missing");
    assert!(
        has("engine", "epoch_publish"),
        "epoch_publish instant missing"
    );
    assert!(
        events.iter().any(|e| e.phase == "comm"
            && e.name == "bcast"
            && e.attrs.iter().any(|&(k, v)| k == "bytes" && v > 0)),
        "comm bcast span with a byte count missing"
    );
    // Every engine event is attributed to a simulated rank thread.
    assert!(events
        .iter()
        .filter(|e| e.phase == "engine")
        .all(|e| (0..4).contains(&e.rank)));

    let json = dspgemm::obs::chrome_trace_json(&events);
    let summary = dspgemm::obs::validate_chrome_trace(&json).expect("schema-valid trace");
    assert!(summary.spans > 0 && summary.instants > 0);
}

/// The disabled tracer records nothing — the default path stays silent, so
/// instrumented library code is free to run everywhere.
#[test]
fn disabled_tracer_records_nothing() {
    let _g = tracer_lock();
    let _ = dspgemm::obs::drain();
    {
        let _sp = dspgemm::obs::span("comm", "send").attr("bytes", 1);
        dspgemm::obs::instant("engine", "epoch_publish", &[("epoch", 1)]);
    }
    assert!(dspgemm::obs::drain().is_empty());
}
