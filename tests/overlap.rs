//! Overlap invariants, end to end: the pipelined (nonblocking,
//! double-buffered) schedules must produce results **bit-identical** to the
//! blocking schedules with **byte-identical** metered wire volume — across
//! p ∈ {1, 4, 9} and both evaluated semirings. Pipelining moves
//! communication time from exposed to overlapped; it must never move bytes
//! or values.

use dspgemm::core::dyn_algebraic::apply_algebraic_updates;
use dspgemm::core::dyn_general::{apply_general_updates, GeneralUpdates};
use dspgemm::core::summa::{summa, summa_blocking, summa_bloom, summa_bloom_blocking};
use dspgemm::core::{DistMat, Grid};
use dspgemm::sparse::semiring::{MinPlus, Semiring, U64Plus};
use dspgemm::sparse::{Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;

fn random_triples<S: Semiring>(
    seed: u64,
    n: Index,
    count: usize,
    val: impl Fn(u64) -> S::Elem,
) -> Vec<Triple<S::Elem>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                val(rng.gen_range(9) + 1),
            )
        })
        .collect()
}

/// Pipelined vs. blocking SUMMA: bit-identical `C`, identical flops,
/// byte-identical wire volume, zero payload clones on both schedules.
fn check_summa_schedules<S: Semiring>(val: impl Fn(u64) -> S::Elem + Send + Sync + Copy) {
    let n: Index = 36;
    for p in [1usize, 4, 9] {
        let runs: Vec<_> = [false, true]
            .into_iter()
            .map(|pipelined| {
                dspgemm::mpi::run(p, move |comm| {
                    let grid = Grid::new(comm);
                    let mut timer = PhaseTimer::new();
                    let t = if comm.rank() == 0 {
                        random_triples::<S>(42, n, 400, val)
                    } else {
                        vec![]
                    };
                    let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
                    let (c, flops) = if pipelined {
                        summa::<S>(&grid, &a, &a, 1, &mut timer)
                    } else {
                        summa_blocking::<S>(&grid, &a, &a, 1, &mut timer)
                    };
                    (c.gather_to_root(comm), flops)
                })
            })
            .collect();
        let (blocking, pipelined) = (&runs[0], &runs[1]);
        assert_eq!(
            blocking.results, pipelined.results,
            "p={p}: pipelined SUMMA result differs from blocking"
        );
        assert_eq!(
            blocking.stats.volume(),
            pipelined.stats.volume(),
            "p={p}: pipelined SUMMA wire volume differs from blocking"
        );
        assert_eq!(blocking.payload_clones, 0);
        assert_eq!(pipelined.payload_clones, 0);
    }
}

#[test]
fn summa_pipelined_matches_blocking_u64plus() {
    check_summa_schedules::<U64Plus>(|v| v);
}

#[test]
fn summa_pipelined_matches_blocking_minplus() {
    check_summa_schedules::<MinPlus>(|v| v as f64);
}

/// Bloom-fused SUMMA: both `C` and the filter matrix `F` identical across
/// schedules.
#[test]
fn summa_bloom_pipelined_matches_blocking() {
    let n: Index = 30;
    for p in [1usize, 4, 9] {
        let runs: Vec<_> = [false, true]
            .into_iter()
            .map(|pipelined| {
                dspgemm::mpi::run(p, move |comm| {
                    let grid = Grid::new(comm);
                    let mut timer = PhaseTimer::new();
                    let t = if comm.rank() == 0 {
                        random_triples::<U64Plus>(7, n, 300, |v| v)
                    } else {
                        vec![]
                    };
                    let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
                    let (c, f, _) = if pipelined {
                        summa_bloom::<U64Plus>(&grid, &a, &a, 1, &mut timer)
                    } else {
                        summa_bloom_blocking::<U64Plus>(&grid, &a, &a, 1, &mut timer)
                    };
                    (c.gather_to_root(comm), f.gather_to_root(comm))
                })
            })
            .collect();
        assert_eq!(runs[0].results, runs[1].results, "p={p}");
        assert_eq!(runs[0].stats.volume(), runs[1].stats.volume(), "p={p}");
    }
}

/// Dynamic algebraic updates on the pipelined engine maintain exactly the
/// product a from-scratch *blocking* SUMMA computes — for both semirings
/// and every grid size. (The dynamic paths are pipelined-only; the blocking
/// static recomputation is the independent reference.)
fn check_dynamic_updates<S: Semiring>(val: impl Fn(u64) -> S::Elem + Send + Sync + Copy) {
    let n: Index = 26;
    for p in [1usize, 4, 9] {
        let out = dspgemm::mpi::run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples::<S>(s, n, 90, val)
                } else {
                    vec![]
                }
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
            let (mut c, _) = summa::<S>(&grid, &a, &b, 1, &mut timer);
            for round in 0..3u64 {
                let a_ups = random_triples::<S>(100 + round + comm.rank() as u64, n, 12, val);
                let b_ups = random_triples::<S>(200 + round + comm.rank() as u64, n, 12, val);
                apply_algebraic_updates::<S>(
                    &grid, &mut a, &mut b, &mut c, a_ups, b_ups, 1, &mut timer,
                );
            }
            let (c_static, _) = summa_blocking::<S>(&grid, &a, &b, 1, &mut timer);
            (c.gather_to_root(comm), c_static.gather_to_root(comm))
        });
        let (c_dyn, c_static) = &out.results[0];
        assert_eq!(
            c_dyn, c_static,
            "p={p}: pipelined dynamic updates != blocking static recompute"
        );
    }
}

#[test]
fn dynamic_updates_match_blocking_reference_u64plus() {
    check_dynamic_updates::<U64Plus>(|v| v);
}

#[test]
fn dynamic_updates_match_blocking_reference_minplus() {
    check_dynamic_updates::<MinPlus>(|v| v as f64);
}

/// General (deletion-carrying) updates through the pipelined
/// `COMPUTE_PATTERN` + masked-recompute rounds agree with the blocking
/// static recomputation, for the min-plus semiring where additive patching
/// is impossible.
#[test]
fn general_updates_match_blocking_reference() {
    let n: Index = 20;
    for p in [1usize, 4, 9] {
        let out = dspgemm::mpi::run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t = if comm.rank() == 0 {
                random_triples::<MinPlus>(5, n, 3 * n as usize, |v| v as f64)
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, t.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
            let (mut c, mut f, _) = summa_bloom::<MinPlus>(&grid, &a, &b, 1, &mut timer);
            // Deletions + value increases drawn from the current state.
            let a_cur = a.gather_to_root(comm);
            let a_upd = if comm.rank() == 0 {
                let cur = a_cur.unwrap();
                let mut upd = GeneralUpdates::new();
                for t in cur.iter().step_by(4) {
                    upd.deletes.push((t.row, t.col));
                }
                for t in cur.iter().skip(1).step_by(5) {
                    upd.sets.push(Triple::new(t.row, t.col, t.val + 7.5));
                }
                upd
            } else {
                GeneralUpdates::new()
            };
            apply_general_updates::<MinPlus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                &mut f,
                a_upd,
                GeneralUpdates::new(),
                1,
                &mut timer,
            );
            let (c_static, _) = summa_blocking::<MinPlus>(&grid, &a, &b, 1, &mut timer);
            (c.gather_to_root(comm), c_static.gather_to_root(comm))
        });
        let (c_dyn, c_static) = &out.results[0];
        assert_eq!(c_dyn, c_static, "p={p}");
    }
}

/// A request whose payload is sent *after* issue while the receiver
/// computes records overlapped communication time; a p = 1 pipelined run
/// records none (short-circuited broadcasts never touch the request
/// machinery).
///
/// The overlap side is a deterministic two-rank program (the receiver
/// signals its issue before the root sends, then computes until the wait)
/// rather than a SUMMA run: under the honest availability-based metric,
/// whether a tiny SUMMA run overlaps depends on OS scheduling, but this
/// dependency structure guarantees a nonzero compute-covered window.
#[test]
fn pipelined_runs_record_overlap() {
    let out = dspgemm::mpi::run(2, |comm| {
        // Broadcast on a dup so the signaling send/recv on the world
        // communicator cannot perturb the collective tag sequence.
        let d = comm.dup();
        if comm.rank() == 0 {
            // Wait until rank 1 has issued its ibcast, then send.
            let () = comm.recv(1, 9);
            std::thread::sleep(std::time::Duration::from_millis(2));
            d.ibcast_shared(0, Some(std::sync::Arc::new(vec![7u64; 256])))
                .wait()
                .len()
        } else {
            let req = d.ibcast_shared::<Vec<u64>>(0, None);
            comm.send(0, 9, ());
            // "Compute" while the broadcast is in flight.
            let spin = std::time::Instant::now();
            while spin.elapsed() < std::time::Duration::from_millis(8) {
                std::hint::spin_loop();
            }
            req.wait().len()
        }
    });
    assert!(out.results.iter().all(|&l| l == 256));
    assert!(
        out.stats.total_overlapped_ns() > 0,
        "compute-covered broadcast recorded no overlap"
    );

    // p = 1: the whole pipelined stack short-circuits — zero overlap.
    let n: Index = 36;
    let single = dspgemm::mpi::run(1, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let t = random_triples::<U64Plus>(3, n, 600, |v| v);
        let a = DistMat::from_global_triples(&grid, n, n, t, 1, &mut timer);
        let (c, _) = summa::<U64Plus>(&grid, &a, &a, 1, &mut timer);
        c.local_nnz()
    });
    assert_eq!(
        single.stats.total_overlapped_ns(),
        0,
        "p=1 must not touch the request machinery"
    );
}
