//! Communication-avoiding round invariants, end to end (Section V-C +
//! inter-batch lookahead): virtual transposition must produce a `C`
//! **bit-identical** to the physical transpose-exchange schedule while
//! sending **zero** p2p bytes (the exchange is that path's only p2p
//! traffic), and the depth-1 redistribution lookahead must leave both the
//! epoch sequence and the metered wire volume identical to sequential
//! application — across p ∈ {1, 4, 9} and both evaluated semirings.

use dspgemm::core::dyn_algebraic::TransposeMode;
use dspgemm::core::{DistMat, DynSpGemm, Grid};
use dspgemm::mpi::CommCategory;
use dspgemm::sparse::semiring::{MinPlus, Semiring, U64Plus};
use dspgemm::sparse::{Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;

const N: Index = 32;
const BATCHES: usize = 3;

fn random_triples<S: Semiring>(
    seed: u64,
    n: Index,
    count: usize,
    val: impl Fn(u64) -> S::Elem,
) -> Vec<Triple<S::Elem>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                val(rng.gen_range(9) + 1),
            )
        })
        .collect()
}

/// Root gathers of `C` after each batch (None off-root).
type GatheredEpochs<E> = Vec<Option<Vec<Triple<E>>>>;

/// One full dynamic session in the given transpose mode: initial product,
/// then `BATCHES` algebraic batches applied sequentially, gathering `C`
/// after every batch.
fn run_mode<S: Semiring>(
    p: usize,
    mode: TransposeMode,
    val: impl Fn(u64) -> S::Elem + Send + Sync + Copy,
) -> dspgemm::mpi::SimOutput<GatheredEpochs<S::Elem>> {
    dspgemm::mpi::run(p, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let feed = |seed: u64, count: usize| {
            if comm.rank() == 0 {
                random_triples::<S>(seed, N, count, val)
            } else {
                vec![]
            }
        };
        let a = DistMat::from_global_triples(&grid, N, N, feed(11, 250), 1, &mut timer);
        let b = DistMat::from_global_triples(&grid, N, N, feed(12, 250), 1, &mut timer);
        let mut eng = DynSpGemm::<S>::new(&grid, a, b, 1, false);
        eng.transpose_mode = mode;
        let mut gathered = Vec::new();
        for k in 0..BATCHES as u64 {
            eng.apply_algebraic(&grid, feed(100 + k, 60), feed(200 + k, 60));
            eng.snapshot();
            gathered.push(eng.c.gather_to_root(comm));
        }
        gathered
    })
}

/// Virtual vs. physical: bit-identical `C` after every batch, and the
/// transpose exchange gone from the wire — zero p2p bytes on the virtual
/// arm vs. strictly positive on the physical arm whenever ranks actually
/// have off-rank round partners (p > 1).
fn check_virtual_matches_physical<S: Semiring>(val: impl Fn(u64) -> S::Elem + Send + Sync + Copy)
where
    S::Elem: PartialEq + std::fmt::Debug,
{
    for p in [1usize, 4, 9] {
        let physical = run_mode::<S>(p, TransposeMode::Physical, val);
        let virtual_ = run_mode::<S>(p, TransposeMode::Virtual, val);
        assert_eq!(
            physical.results, virtual_.results,
            "p={p}: virtual transposition changed C"
        );
        let phys_p2p = physical.stats.bytes_in(CommCategory::P2p);
        let virt_p2p = virtual_.stats.bytes_in(CommCategory::P2p);
        assert_eq!(virt_p2p, 0, "p={p}: virtual arm paid a transpose exchange");
        if p > 1 {
            assert!(
                phys_p2p > virt_p2p,
                "p={p}: physical arm sent no transpose-exchange bytes ({phys_p2p})"
            );
        }
    }
}

#[test]
fn virtual_transposition_matches_physical_u64plus() {
    check_virtual_matches_physical::<U64Plus>(|v| v);
}

#[test]
fn virtual_transposition_matches_physical_minplus() {
    check_virtual_matches_physical::<MinPlus>(|v| v as f64);
}

/// Lookahead vs. sequential, epochs published per batch: callers flush the
/// pending batch before each snapshot, so the published epoch sequence —
/// numbers and contents — must equal sequential application exactly, with
/// byte-identical wire volume.
#[test]
fn lookahead_epoch_sequence_matches_sequential() {
    for p in [1usize, 4, 9] {
        let arm = |lookahead: bool| {
            dspgemm::mpi::run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = |seed: u64, count: usize| {
                    if comm.rank() == 0 {
                        random_triples::<U64Plus>(seed, N, count, |v| v)
                    } else {
                        vec![]
                    }
                };
                let a = DistMat::from_global_triples(&grid, N, N, feed(31, 250), 1, &mut timer);
                let b = DistMat::from_global_triples(&grid, N, N, feed(32, 250), 1, &mut timer);
                let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
                let mut epochs = Vec::new();
                for k in 0..BATCHES as u64 {
                    if lookahead {
                        eng.submit_algebraic(&grid, feed(300 + k, 60), feed(400 + k, 60));
                        assert!(eng.pending_depth() <= 1, "lookahead depth exceeded 1");
                        eng.flush(&grid);
                        // A second flush must be a no-op (idempotence).
                        eng.flush(&grid);
                    } else {
                        eng.apply_algebraic(&grid, feed(300 + k, 60), feed(400 + k, 60));
                    }
                    let snap = eng.snapshot();
                    epochs.push((snap.epoch(), eng.c.gather_to_root(comm)));
                }
                epochs
            })
        };
        let sequential = arm(false);
        let lookahead = arm(true);
        assert_eq!(
            sequential.results, lookahead.results,
            "p={p}: epoch sequence diverged"
        );
        assert_eq!(
            sequential.stats.volume(),
            lookahead.stats.volume(),
            "p={p}: lookahead moved wire bytes"
        );
    }
}

/// Fully pipelined lookahead (one flush at the end, redistributions in
/// flight across whole batch applications): final `C` and wire volume
/// still identical to sequential, and the pending depth stays bounded at
/// 1 no matter how many batches are submitted back to back — batch `k`'s
/// apply (the "slow" part) always runs before batch `k + 1` is accepted.
#[test]
fn lookahead_depth_bounded_and_wire_identical() {
    for p in [1usize, 4, 9] {
        let arm = |lookahead: bool| {
            dspgemm::mpi::run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = |seed: u64, count: usize| {
                    if comm.rank() == 0 {
                        random_triples::<U64Plus>(seed, N, count, |v| v)
                    } else {
                        vec![]
                    }
                };
                let a = DistMat::from_global_triples(&grid, N, N, feed(51, 250), 1, &mut timer);
                let b = DistMat::from_global_triples(&grid, N, N, feed(52, 250), 1, &mut timer);
                let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
                for k in 0..BATCHES as u64 {
                    if lookahead {
                        eng.submit_algebraic(&grid, feed(500 + k, 60), feed(600 + k, 60));
                        assert_eq!(
                            eng.pending_depth(),
                            1,
                            "submit must leave exactly one batch in flight"
                        );
                    } else {
                        eng.apply_algebraic(&grid, feed(500 + k, 60), feed(600 + k, 60));
                    }
                }
                if lookahead {
                    eng.flush(&grid);
                    assert_eq!(eng.pending_depth(), 0, "flush must drain the slot");
                }
                let snap = eng.snapshot();
                (snap.epoch(), eng.c.gather_to_root(comm))
            })
        };
        let sequential = arm(false);
        let lookahead = arm(true);
        assert_eq!(
            sequential.results, lookahead.results,
            "p={p}: pipelined C diverged from sequential"
        );
        assert_eq!(
            sequential.stats.volume(),
            lookahead.stats.volume(),
            "p={p}: pipelining moved wire bytes"
        );
    }
}
