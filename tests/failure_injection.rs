//! Failure-injection and misuse tests: wrong configurations must fail fast
//! with clear messages, and a crashing rank must never deadlock the rest.

use dspgemm::core::{DistMat, Grid};
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::util::stats::PhaseTimer;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn non_square_rank_count_is_rejected() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        dspgemm_mpi::run(6, |comm| {
            let _ = Grid::new(comm);
        });
    }));
    assert!(result.is_err(), "6 ranks cannot form a square grid");
}

#[test]
fn dimension_mismatch_is_rejected() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        dspgemm_mpi::run(4, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let a: DistMat<u64> = DistMat::empty(&grid, 8, 9);
            let b: DistMat<u64> = DistMat::empty(&grid, 10, 8); // 9 != 10
            let _ = dspgemm::core::summa::summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
        });
    }));
    assert!(result.is_err(), "inner dimension mismatch must panic");
}

#[test]
fn crashing_rank_poisons_instead_of_deadlocking() {
    // One rank dies mid-collective; the others are blocked in a broadcast
    // that can never complete. The runtime must propagate the failure.
    let started = std::time::Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        dspgemm_mpi::run(4, |comm| {
            if comm.rank() == 1 {
                panic!("injected mid-collective failure");
            }
            // Root 1 never broadcasts; everyone else waits on it.
            let _: u64 = comm.bcast(1, None);
        });
    }));
    assert!(result.is_err());
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "failure must propagate promptly, not deadlock"
    );
}

#[test]
fn crash_during_distributed_update_surfaces() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        dspgemm_mpi::run(4, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let mut mat: DistMat<u64> = DistMat::empty(&grid, 16, 16);
            if comm.rank() == 3 {
                panic!("rank 3 dies before redistribution");
            }
            // The remaining ranks enter the alltoall and must be woken by
            // the poison rather than waiting for rank 3 forever.
            mat.insert_global_triples(
                &grid,
                vec![dspgemm::sparse::Triple::new(0, 0, 1u64)],
                1,
                &mut timer,
            );
        });
    }));
    assert!(result.is_err());
}

#[test]
fn out_of_range_update_indices_are_rejected_in_debug() {
    // Debug builds assert index ranges during redistribution routing.
    if cfg!(debug_assertions) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            dspgemm_mpi::run(1, |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let mut mat: DistMat<u64> = DistMat::empty(&grid, 4, 4);
                mat.insert_global_triples(
                    &grid,
                    vec![dspgemm::sparse::Triple::new(99, 0, 1u64)],
                    1,
                    &mut timer,
                );
            });
        }));
        assert!(result.is_err());
    }
}
