//! Property-based integration tests (proptest): the core invariants under
//! randomly generated inputs.

use dspgemm::core::summa::summa;
use dspgemm::core::update::{apply_add, build_update_matrix, Dedup};
use dspgemm::core::{DistMat, Grid};
use dspgemm::sparse::dense::Dense;
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::{Csr, Dcsr, DhbMatrix, Index, Triple};
use dspgemm::util::stats::PhaseTimer;
use proptest::prelude::*;

const N: Index = 16;

fn triple_strategy(n: Index) -> impl Strategy<Value = Triple<u64>> {
    (0..n, 0..n, 1u64..10).prop_map(|(r, c, v)| Triple::new(r, c, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Redistribution never loses, duplicates, or misroutes a tuple.
    #[test]
    fn redistribution_is_a_routing_permutation(
        tuples in prop::collection::vec(triple_strategy(N), 0..200),
    ) {
        let tuples_in = tuples.clone();
        let out = dspgemm_mpi::run(4, move |comm| {
            let grid = Grid::new(comm);
            // Rank r contributes every 4th tuple.
            let mine: Vec<Triple<u64>> = tuples_in
                .iter()
                .copied()
                .skip(comm.rank())
                .step_by(4)
                .collect();
            let mut timer = PhaseTimer::new();
            let got = dspgemm::core::redistribute::redistribute(&grid, N, N, mine, &mut timer);
            // Ownership check.
            let info = dspgemm::core::distmat::BlockInfo::for_rank(&grid, N, N);
            for t in &got {
                assert!(info.row_range.contains(&t.row));
                assert!(info.col_range.contains(&t.col));
            }
            got
        });
        let mut all: Vec<(Index, Index, u64)> = out
            .results
            .iter()
            .flatten()
            .map(|t| (t.row, t.col, t.val))
            .collect();
        all.sort_unstable();
        let mut expect: Vec<(Index, Index, u64)> =
            tuples.iter().map(|t| (t.row, t.col, t.val)).collect();
        expect.sort_unstable();
        prop_assert_eq!(all, expect);
    }

    /// DistMat + update matrix addition equals a sequential reference.
    #[test]
    fn distributed_add_matches_reference(
        initial in prop::collection::vec(triple_strategy(N), 0..100),
        updates in prop::collection::vec(triple_strategy(N), 0..60),
    ) {
        let (initial_c, updates_c) = (initial.clone(), updates.clone());
        let out = dspgemm_mpi::run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = if comm.rank() == 0 { initial_c.clone() } else { vec![] };
            let mut m = DistMat::empty(&grid, N, N);
            let init = build_update_matrix::<U64Plus>(&grid, N, N, feed, Dedup::Add, &mut timer);
            apply_add::<U64Plus>(&mut m, &init, 2);
            let ups = if comm.rank() == 0 { updates_c.clone() } else { vec![] };
            let upd = build_update_matrix::<U64Plus>(&grid, N, N, ups, Dedup::Add, &mut timer);
            apply_add::<U64Plus>(&mut m, &upd, 2);
            m.gather_to_root(comm)
        });
        let gathered = out.results[0].as_ref().unwrap();
        let got = Dense::from_triples::<U64Plus>(N, N, gathered);
        let mut reference = Dense::from_triples::<U64Plus>(N, N, &initial);
        reference = reference.add::<U64Plus>(&Dense::from_triples::<U64Plus>(N, N, &updates));
        prop_assert_eq!(got.diff(&reference), vec![]);
    }

    /// Dynamic SpGEMM equals static recomputation for arbitrary batches.
    #[test]
    fn dynamic_spgemm_matches_static(
        a0 in prop::collection::vec(triple_strategy(N), 1..80),
        b0 in prop::collection::vec(triple_strategy(N), 1..80),
        a_ups in prop::collection::vec(triple_strategy(N), 0..30),
        b_ups in prop::collection::vec(triple_strategy(N), 0..30),
    ) {
        let (a0c, b0c, a_upsc, b_upsc) = (a0, b0, a_ups, b_ups);
        let out = dspgemm_mpi::run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |v: &Vec<Triple<u64>>| {
                if comm.rank() == 0 { v.clone() } else { vec![] }
            };
            let mut a = DistMat::from_global_triples(&grid, N, N, feed(&a0c), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, N, N, feed(&b0c), 1, &mut timer);
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            dspgemm::core::dyn_algebraic::apply_algebraic_updates::<U64Plus>(
                &grid, &mut a, &mut b, &mut c, feed(&a_upsc), feed(&b_upsc), 1, &mut timer,
            );
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            (c.gather_to_root(comm), c_static.gather_to_root(comm))
        });
        let (c_dyn, c_static) = &out.results[0];
        prop_assert_eq!(c_dyn, c_static);
    }

    /// DHB agrees with CSR/DCSR conversions on arbitrary contents.
    #[test]
    fn storage_conversions_roundtrip(
        triples in prop::collection::vec(triple_strategy(64), 0..300),
    ) {
        let mut dhb: DhbMatrix<u64> = DhbMatrix::new(64, 64);
        for t in &triples {
            dhb.set(t.row, t.col, t.val);
        }
        let sorted = dhb.to_sorted_triples();
        let csr = Csr::from_sorted_triples(64, 64, &sorted);
        let dcsr = Dcsr::from_sorted_triples(64, 64, &sorted);
        prop_assert_eq!(csr.nnz(), dhb.nnz());
        prop_assert_eq!(dcsr.nnz(), dhb.nnz());
        prop_assert_eq!(csr.to_triples(), sorted.clone());
        prop_assert_eq!(dcsr.to_triples(), sorted);
        csr.validate().unwrap();
        dcsr.validate().unwrap();
    }

    /// Local SpGEMM over DHB/DCSR operands equals the dense oracle.
    #[test]
    fn local_spgemm_oracle(
        a_t in prop::collection::vec(triple_strategy(20), 0..120),
        b_t in prop::collection::vec(triple_strategy(20), 0..120),
    ) {
        let a = Csr::from_triples::<U64Plus>(20, 20, a_t.clone());
        let b = Csr::from_triples::<U64Plus>(20, 20, b_t.clone());
        let got = dspgemm::sparse::local_mm::spgemm::<U64Plus, _, _>(&a, &b, 2);
        let da = Dense::from_triples::<U64Plus>(20, 20, &a_t);
        let db = Dense::from_triples::<U64Plus>(20, 20, &b_t);
        let expect = da.matmul::<U64Plus>(&db);
        prop_assert_eq!(
            Dense::from_dcsr::<U64Plus>(&got.result).diff(&expect),
            vec![]
        );
    }
}
