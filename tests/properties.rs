//! Property-based integration tests: the core invariants under randomly
//! generated inputs.
//!
//! The seed repository drove these with the external `proptest` crate; this
//! workspace must build offline, so the same properties are exercised with a
//! seeded in-repo generator instead ([`SplitMix64`]): every property runs
//! `CASES` independently drawn inputs, with sizes drawn from the same ranges
//! proptest used. Failures print the offending case seed, which reproduces
//! the input deterministically.

use dspgemm::core::summa::summa;
use dspgemm::core::update::{apply_add, build_update_matrix, Dedup};
use dspgemm::core::{DistMat, Grid};
use dspgemm::sparse::dense::Dense;
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::{Csr, Dcsr, DhbMatrix, Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;

const N: Index = 16;
const CASES: u64 = 24;

/// Draws `count` triples with coordinates in `0..n` and values in `1..10`
/// (the ranges of the original proptest strategy).
fn draw_triples(rng: &mut SplitMix64, n: Index, count: usize) -> Vec<Triple<u64>> {
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                rng.gen_range(9) + 1,
            )
        })
        .collect()
}

/// Draws a collection size in `lo..hi` (`prop::collection::vec` bounds).
fn draw_len(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    lo + rng.gen_range((hi - lo) as u64) as usize
}

/// Redistribution never loses, duplicates, or misroutes a tuple.
#[test]
fn redistribution_is_a_routing_permutation() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xA110C, case);
        let len = draw_len(&mut rng, 0, 200);
        let tuples = draw_triples(&mut rng, N, len);
        let tuples_in = tuples.clone();
        let out = dspgemm_mpi::run(4, move |comm| {
            let grid = Grid::new(comm);
            // Rank r contributes every 4th tuple.
            let mine: Vec<Triple<u64>> = tuples_in
                .iter()
                .copied()
                .skip(comm.rank())
                .step_by(4)
                .collect();
            let mut timer = PhaseTimer::new();
            let got = dspgemm::core::redistribute::redistribute(&grid, N, N, mine, &mut timer);
            // Ownership check.
            let info = dspgemm::core::distmat::BlockInfo::for_rank(&grid, N, N);
            for t in &got {
                assert!(info.row_range.contains(&t.row), "case {case}");
                assert!(info.col_range.contains(&t.col), "case {case}");
            }
            got
        });
        let mut all: Vec<(Index, Index, u64)> = out
            .results
            .iter()
            .flatten()
            .map(|t| (t.row, t.col, t.val))
            .collect();
        all.sort_unstable();
        let mut expect: Vec<(Index, Index, u64)> =
            tuples.iter().map(|t| (t.row, t.col, t.val)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "case {case}");
    }
}

/// DistMat + update matrix addition equals a sequential reference.
#[test]
fn distributed_add_matches_reference() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xADD0C, case);
        let len = draw_len(&mut rng, 0, 100);
        let initial = draw_triples(&mut rng, N, len);
        let len = draw_len(&mut rng, 0, 60);
        let updates = draw_triples(&mut rng, N, len);
        let (initial_c, updates_c) = (initial.clone(), updates.clone());
        let out = dspgemm_mpi::run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = if comm.rank() == 0 {
                initial_c.clone()
            } else {
                vec![]
            };
            let mut m = DistMat::empty(&grid, N, N);
            let init = build_update_matrix::<U64Plus>(&grid, N, N, feed, Dedup::Add, &mut timer);
            apply_add::<U64Plus>(&mut m, &init, 2);
            let ups = if comm.rank() == 0 {
                updates_c.clone()
            } else {
                vec![]
            };
            let upd = build_update_matrix::<U64Plus>(&grid, N, N, ups, Dedup::Add, &mut timer);
            apply_add::<U64Plus>(&mut m, &upd, 2);
            m.gather_to_root(comm)
        });
        let gathered = out.results[0].as_ref().unwrap();
        let got = Dense::from_triples::<U64Plus>(N, N, gathered);
        let mut reference = Dense::from_triples::<U64Plus>(N, N, &initial);
        reference = reference.add::<U64Plus>(&Dense::from_triples::<U64Plus>(N, N, &updates));
        assert_eq!(got.diff(&reference), vec![], "case {case}");
    }
}

/// Dynamic SpGEMM equals static recomputation for arbitrary batches.
#[test]
fn dynamic_spgemm_matches_static() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0xD_511, case);
        let len = draw_len(&mut rng, 1, 80);
        let a0 = draw_triples(&mut rng, N, len);
        let len = draw_len(&mut rng, 1, 80);
        let b0 = draw_triples(&mut rng, N, len);
        let len = draw_len(&mut rng, 0, 30);
        let a_ups = draw_triples(&mut rng, N, len);
        let len = draw_len(&mut rng, 0, 30);
        let b_ups = draw_triples(&mut rng, N, len);
        let (a0c, b0c, a_upsc, b_upsc) = (a0, b0, a_ups, b_ups);
        let out = dspgemm_mpi::run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |v: &Vec<Triple<u64>>| {
                if comm.rank() == 0 {
                    v.clone()
                } else {
                    vec![]
                }
            };
            let mut a = DistMat::from_global_triples(&grid, N, N, feed(&a0c), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, N, N, feed(&b0c), 1, &mut timer);
            let (mut c, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            dspgemm::core::dyn_algebraic::apply_algebraic_updates::<U64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                feed(&a_upsc),
                feed(&b_upsc),
                1,
                &mut timer,
            );
            let (c_static, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
            (c.gather_to_root(comm), c_static.gather_to_root(comm))
        });
        let (c_dyn, c_static) = &out.results[0];
        assert_eq!(c_dyn, c_static, "case {case}");
    }
}

/// DHB agrees with CSR/DCSR conversions on arbitrary contents.
#[test]
fn storage_conversions_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0x57_04A6E, case);
        let len = draw_len(&mut rng, 0, 300);
        let triples = draw_triples(&mut rng, 64, len);
        let mut dhb: DhbMatrix<u64> = DhbMatrix::new(64, 64);
        for t in &triples {
            dhb.set(t.row, t.col, t.val);
        }
        let sorted = dhb.to_sorted_triples();
        let csr = Csr::from_sorted_triples(64, 64, &sorted);
        let dcsr = Dcsr::from_sorted_triples(64, 64, &sorted);
        assert_eq!(csr.nnz(), dhb.nnz(), "case {case}");
        assert_eq!(dcsr.nnz(), dhb.nnz(), "case {case}");
        assert_eq!(csr.to_triples(), sorted.clone(), "case {case}");
        assert_eq!(dcsr.to_triples(), sorted, "case {case}");
        csr.validate().unwrap();
        dcsr.validate().unwrap();
    }
}

/// Local SpGEMM over CSR operands equals the dense oracle.
#[test]
fn local_spgemm_oracle() {
    for case in 0..CASES {
        let mut rng = SplitMix64::derive(0x9AC1E, case);
        let len = draw_len(&mut rng, 0, 120);
        let a_t = draw_triples(&mut rng, 20, len);
        let len = draw_len(&mut rng, 0, 120);
        let b_t = draw_triples(&mut rng, 20, len);
        let a = Csr::from_triples::<U64Plus>(20, 20, a_t.clone());
        let b = Csr::from_triples::<U64Plus>(20, 20, b_t.clone());
        let got = dspgemm::sparse::local_mm::spgemm::<U64Plus, _, _>(&a, &b, 2);
        let da = Dense::from_triples::<U64Plus>(20, 20, &a_t);
        let db = Dense::from_triples::<U64Plus>(20, 20, &b_t);
        let expect = da.matmul::<U64Plus>(&db);
        assert_eq!(
            Dense::from_dcsr::<U64Plus>(&got.result).diff(&expect),
            vec![],
            "case {case}"
        );
    }
}
