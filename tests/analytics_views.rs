//! Property tests for the analytics subsystem: every registered view must
//! equal brute-force recomputation from the gathered graph after every
//! mixed insert/delete batch, on ER and R-MAT graphs, across semirings and
//! grid sizes — the acceptance invariant of the maintained-view design.

use dspgemm::analytics::{
    AnalyticsSession, CommonNeighborsView, DegreeView, KHopView, TriangleCountView,
};
use dspgemm::core::dyn_general::GeneralUpdates;
use dspgemm::graph::{er, rmat, symmetrize};
use dspgemm::sparse::dense::Dense;
use dspgemm::sparse::semiring::{MinPlus, Semiring, U64Plus};
use dspgemm::sparse::{Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};

const HOPS: usize = 2;

/// Brute-force `y = A · x` on the dense reference.
fn dense_spmv<S: Semiring>(a: &Dense<S::Elem>, x: &[S::Elem]) -> Vec<S::Elem> {
    let n = a.nrows();
    (0..n)
        .map(|r| {
            let mut acc = S::zero();
            for c in 0..n {
                acc = S::add(acc, S::mul(a.get(r, c), x[c as usize]));
            }
            acc
        })
        .collect()
}

/// Candidate pairs: a deterministic mix of likely edges and non-edges.
fn candidates(n: Index, seed: u64) -> Vec<(Index, Index)> {
    let mut rng = SplitMix64::new(seed);
    let mut pairs: Vec<(Index, Index)> = (0..30)
        .map(|_| {
            (
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
            )
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// One full scenario over `u64`/`(+,·)`: 4 concurrent views, alternating
/// algebraic insert and general delete batches, brute-force checks after
/// every batch on every rank's returned values.
fn u64_scenario(p: usize, n: Index, base_edges: Vec<(u32, u32)>, seed: u64) {
    let cands = candidates(n, seed ^ 0xCAFE);
    let cands_in = cands.clone();
    let out = dspgemm_mpi::run(p, move |comm| {
        let triples: Vec<Triple<u64>> = if comm.rank() == 0 {
            base_edges
                .iter()
                .map(|&(u, v)| Triple::new(u, v, 1))
                .collect()
        } else {
            vec![]
        };
        let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, 2, triples);
        let tri = session.register(Box::new(TriangleCountView::new()));
        let cn = session.register(Box::new(CommonNeighborsView::new(cands_in.clone())));
        let deg = session.register(Box::new(DegreeView::new(1u64)));
        let hop = session.register(Box::new(KHopView::new(vec![(0, 1u64)], HOPS)));
        assert_eq!(session.view_count(), 4);

        let mut checks: Vec<bool> = Vec::new();
        let mut witness: Vec<u64> = Vec::new();
        for round in 0..4u64 {
            if round % 2 == 0 {
                // Algebraic insert batch (every rank contributes).
                let fresh = symmetrize(&er::generate(
                    n,
                    6,
                    seed ^ (round * 17 + comm.rank() as u64),
                ));
                let batch: Vec<Triple<u64>> = fresh
                    .iter()
                    .filter(|&&(u, v)| u != v)
                    .map(|&(u, v)| Triple::new(u, v, 1))
                    .collect();
                session.insert_edges(batch);
            } else {
                // General delete batch drawn from the current global state.
                let cur = session.adjacency().gather_to_root(comm);
                let mut upd = GeneralUpdates::new();
                if let Some(cur) = cur {
                    let mut rng = SplitMix64::new(seed ^ (round * 31));
                    for _ in 0..5 {
                        if !cur.is_empty() {
                            let t = cur[rng.gen_index(cur.len())];
                            upd.deletes.push((t.row, t.col));
                        }
                    }
                }
                session.apply_general(upd);
            }

            // --- Brute-force references from the gathered state. ---
            let a_gathered = session.adjacency().gather_to_root(comm);
            let c_gathered = session.product().gather_to_root(comm);
            let tri_count = session.view_as::<TriangleCountView>(tri).unwrap().count();
            let degrees = session
                .view_as::<DegreeView<U64Plus>>(deg)
                .unwrap()
                .to_global(session.grid())
                .unwrap();
            let hops = session
                .view_as::<KHopView<U64Plus>>(hop)
                .unwrap()
                .to_global(session.grid())
                .unwrap();
            let cn_view = session.view_as::<CommonNeighborsView<U64Plus>>(cn).unwrap();
            let scores: Vec<Option<u64>> = cands_in
                .iter()
                .map(|&(u, v)| cn_view.score(session.grid(), n, u, v))
                .collect();
            // Global aggregate over the maintained product plus point
            // lookups into the k-hop vector (both collective).
            let c_sum = session.product_aggregate(
                0u64,
                |acc, _r, _c, v| acc.wrapping_add(v),
                u64::wrapping_add,
            );
            let hop_view = session.view_as::<KHopView<U64Plus>>(hop).unwrap();
            let hop_probe: Vec<u64> = [0, 1, n - 1]
                .iter()
                .map(|&u| hop_view.value_at(session.grid(), u).unwrap())
                .collect();
            let reached = hop_view.count_reached(session.grid()).unwrap();
            witness.push(tri_count);
            witness.push(c_sum);
            witness.push(reached);

            if comm.rank() == 0 {
                let a_t = a_gathered.unwrap();
                let da = Dense::from_triples::<U64Plus>(n, n, &a_t);
                let dc_ref = da.matmul::<U64Plus>(&da);
                // Maintained product equals static recomputation.
                let dc = Dense::from_triples::<U64Plus>(n, n, &c_gathered.unwrap());
                checks.push(dc.diff(&dc_ref).is_empty());
                // Triangle view equals the brute-force masked sum.
                let mut masked = 0u64;
                for t in &a_t {
                    masked = masked.wrapping_add(dc_ref.get(t.row, t.col));
                }
                checks.push(tri_count == masked / 6);
                // Candidate scores equal the dense product (None ⇔ the
                // maintained product has no structural entry, whose dense
                // value must then be zero).
                for (&(u, v), score) in cands_in.iter().zip(&scores) {
                    let reference = dc_ref.get(u, v);
                    match score {
                        Some(s) => checks.push(*s == reference),
                        None => checks.push(reference == 0),
                    }
                }
                // Degrees equal A · 1.
                let ones = vec![1u64; n as usize];
                checks.push(degrees == dense_spmv::<U64Plus>(&da, &ones));
                // k-hop equals Aᵏ e₀; point lookups and the reached count
                // agree with the assembled vector.
                let mut x = vec![0u64; n as usize];
                x[0] = 1;
                for _ in 0..HOPS {
                    x = dense_spmv::<U64Plus>(&da, &x);
                }
                checks.push(hops == x);
                checks.push(hop_probe == vec![x[0], x[1], x[n as usize - 1]]);
                checks.push(reached == x.iter().filter(|&&v| v != 0).count() as u64);
                // Aggregate equals the dense sum of all product entries.
                let mut dense_sum = 0u64;
                for r in 0..n {
                    for c in 0..n {
                        dense_sum = dense_sum.wrapping_add(dc_ref.get(r, c));
                    }
                }
                checks.push(c_sum == dense_sum);
            }
        }
        (checks, witness, session.batches_applied)
    });
    let (root_checks, root_witness, batches) = &out.results[0];
    assert!(
        root_checks.iter().all(|&ok| ok),
        "p={p} n={n}: {} of {} brute-force checks failed",
        root_checks.iter().filter(|&&ok| !ok).count(),
        root_checks.len()
    );
    assert_eq!(*batches, 4);
    // Every rank observed identical view values (SPMD agreement).
    for (rank, (_, witness, _)) in out.results.iter().enumerate() {
        assert_eq!(witness, root_witness, "rank {rank} diverged");
    }
}

#[test]
fn u64_views_match_brute_force_er() {
    let n: Index = 36;
    for p in [1usize, 4, 9] {
        let base = symmetrize(&er::generate(n, 90, 42));
        u64_scenario(p, n, base, 1000 + p as u64);
    }
}

#[test]
fn u64_views_match_brute_force_rmat() {
    let scale = 5; // 32 vertices, skewed degrees
    let n: Index = 1 << scale;
    for p in [1usize, 4, 9] {
        let base = symmetrize(&rmat::generate(&rmat::RmatParams::GRAPH500, scale, 80, 7));
        u64_scenario(p, n, base, 2000 + p as u64);
    }
}

/// MinPlus scenario: 3 concurrent views (triangle counting is `u64`-only)
/// under inserts, min-incompatible value increases and deletions.
#[test]
fn min_plus_views_match_brute_force() {
    let n: Index = 24;
    for p in [1usize, 4, 9] {
        let cands = candidates(n, 77);
        let cands_in = cands.clone();
        let out = dspgemm_mpi::run(p, move |comm| {
            let triples: Vec<Triple<f64>> = if comm.rank() == 0 {
                symmetrize(&er::generate(n, 60, 5))
                    .iter()
                    .map(|&(u, v)| Triple::new(u, v, ((u * 7 + v * 3) % 9 + 1) as f64))
                    .collect()
            } else {
                vec![]
            };
            let mut session = AnalyticsSession::<MinPlus>::from_triples(comm, n, 1, triples);
            let cn = session.register(Box::new(CommonNeighborsView::new(cands_in.clone())));
            let deg = session.register(Box::new(DegreeView::new(0.0f64)));
            let hop = session.register(Box::new(KHopView::new(vec![(2, 0.0f64)], HOPS)));
            assert_eq!(session.view_count(), 3);

            let mut checks: Vec<bool> = Vec::new();
            for round in 0..3u64 {
                match round {
                    0 => {
                        // Algebraic batch: min-combining inserts.
                        let batch: Vec<Triple<f64>> = if comm.rank() == 0 {
                            symmetrize(&er::generate(n, 8, 100))
                                .iter()
                                .filter(|&&(u, v)| u != v)
                                .map(|&(u, v)| Triple::new(u, v, 2.0))
                                .collect()
                        } else {
                            vec![]
                        };
                        session.insert_edges(batch);
                    }
                    _ => {
                        // General batch: value increases + deletions.
                        let cur = session.adjacency().gather_to_root(comm);
                        let mut upd = GeneralUpdates::new();
                        if let Some(cur) = cur {
                            let mut rng = SplitMix64::new(300 + round);
                            for _ in 0..4 {
                                if !cur.is_empty() {
                                    let t = cur[rng.gen_index(cur.len())];
                                    upd.sets.push(Triple::new(t.row, t.col, t.val + 10.0));
                                    let d = cur[rng.gen_index(cur.len())];
                                    upd.deletes.push((d.row, d.col));
                                }
                            }
                        }
                        session.apply_general(upd);
                    }
                }

                let a_gathered = session.adjacency().gather_to_root(comm);
                let c_gathered = session.product().gather_to_root(comm);
                let degrees = session
                    .view_as::<DegreeView<MinPlus>>(deg)
                    .unwrap()
                    .to_global(session.grid())
                    .unwrap();
                let hops = session
                    .view_as::<KHopView<MinPlus>>(hop)
                    .unwrap()
                    .to_global(session.grid())
                    .unwrap();
                let cn_view = session.view_as::<CommonNeighborsView<MinPlus>>(cn).unwrap();
                let scores: Vec<Option<f64>> = cands_in
                    .iter()
                    .map(|&(u, v)| cn_view.score(session.grid(), n, u, v))
                    .collect();

                if comm.rank() == 0 {
                    let a_t = a_gathered.unwrap();
                    let da = Dense::from_triples::<MinPlus>(n, n, &a_t);
                    let dc_ref = da.matmul::<MinPlus>(&da);
                    let dc = Dense::from_triples::<MinPlus>(n, n, &c_gathered.unwrap());
                    checks.push(dc.diff(&dc_ref).is_empty());
                    for (&(u, v), score) in cands_in.iter().zip(&scores) {
                        let reference = dc_ref.get(u, v);
                        match score {
                            Some(s) => checks.push(*s == reference),
                            None => checks.push(reference == MinPlus::zero()),
                        }
                    }
                    let zeros = vec![0.0f64; n as usize];
                    checks.push(degrees == dense_spmv::<MinPlus>(&da, &zeros));
                    let mut x = vec![f64::INFINITY; n as usize];
                    x[2] = 0.0;
                    for _ in 0..HOPS {
                        x = dense_spmv::<MinPlus>(&da, &x);
                    }
                    checks.push(hops == x);
                }
            }
            checks
        });
        let root_checks = &out.results[0];
        assert!(
            root_checks.iter().all(|&ok| ok),
            "p={p}: {} of {} min-plus checks failed",
            root_checks.iter().filter(|&&ok| !ok).count(),
            root_checks.len()
        );
    }
}
