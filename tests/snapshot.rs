//! Snapshot-isolation properties of the epoch-versioned serving layer.
//!
//! The contract under test (ISSUE 5 acceptance):
//!
//! * queries pinned at epoch `e` are **bit-identical** to the pre-batch
//!   state while further batches apply — for `p ∈ {1, 4, 9}`, under both
//!   `U64Plus` and `MinPlus`, through algebraic and general batches;
//! * queries after a batch see epoch `e + 1` **exactly**, bit-identical to
//!   a blocking rerun (a from-scratch recomputation of the updated graph);
//! * publishing is block-granular copy-on-write: an epoch re-shares
//!   (`Arc::ptr_eq`) every block the batch did not touch;
//! * retained-epoch memory is bounded by the outstanding pins: with no
//!   pins, exactly one epoch stays alive no matter how many were published.

use dspgemm::analytics::{AnalyticsSession, TriangleCountView, TriangleReading};
use dspgemm::core::dyn_general::GeneralUpdates;
use dspgemm::core::engine::DynSpGemm;
use dspgemm::core::grid::Grid;
use dspgemm::core::DistMat;
use dspgemm::mpi::run;
use dspgemm::sparse::semiring::{MinPlus, Semiring, U64Plus};
use dspgemm::sparse::{Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;
use std::sync::Arc;

fn random_triples<S: Semiring>(
    seed: u64,
    n: Index,
    count: usize,
    mk: impl Fn(u64) -> S::Elem,
) -> Vec<Triple<S::Elem>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                mk(rng.gen_range(9) + 1),
            )
        })
        .collect()
}

/// Pin epoch 0, drive an algebraic and a general batch through the engine,
/// and assert the pinned epoch is bit-stable while each later epoch equals
/// the blocking rerun.
fn engine_isolation_case<S: Semiring>(p: usize, mk: impl Fn(u64) -> S::Elem + Copy + Send + Sync) {
    let n: Index = 24;
    let out = run(p, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let feed = |s: u64| {
            if comm.rank() == 0 {
                random_triples::<S>(s, n, 80, mk)
            } else {
                vec![]
            }
        };
        let a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
        let mut eng = DynSpGemm::<S>::new(&grid, a, b, 1, true);

        // Pin epoch 0 and record its full state.
        let pin0 = eng.snapshot();
        assert_eq!(pin0.epoch(), 0);
        let a0 = pin0.a().gather_to_root(comm);
        let c0 = pin0.c().gather_to_root(comm);
        let probe = (n / 2, n / 3);
        let c0_entry = pin0.c().get_collective(&grid, probe.0, probe.1);

        // Batch 1 (algebraic): pinned epoch must not move.
        eng.apply_algebraic(
            &grid,
            random_triples::<S>(10 + comm.rank() as u64, n, 10, mk),
            random_triples::<S>(20 + comm.rank() as u64, n, 10, mk),
        );
        let pin1 = eng.snapshot();
        assert_eq!(pin1.epoch(), 1);

        // Batch 2 (general): delete a slice of A.
        let a_cur = eng.a.gather_to_root(comm);
        let a_upd = if comm.rank() == 0 {
            let mut upd = GeneralUpdates::new();
            for t in a_cur.unwrap().iter().step_by(7) {
                upd.deletes.push((t.row, t.col));
            }
            upd
        } else {
            GeneralUpdates::new()
        };
        eng.apply_general(&grid, a_upd, GeneralUpdates::new());
        let pin2 = eng.snapshot();
        assert_eq!(pin2.epoch(), 2);

        // Isolation: epoch 0 is bit-identical to its recorded state after
        // two committed batches (gathered matrices and point reads alike).
        assert!(pin0.a().gather_to_root(comm) == a0);
        assert!(pin0.c().gather_to_root(comm) == c0);
        assert!(pin0.c().get_collective(&grid, probe.0, probe.1) == c0_entry);
        // Epoch 1 still differs from epoch 2's A (the general batch
        // deleted), so the pins really are distinct states — judged on the
        // root, the only rank `gather_to_root` materializes on (the gathers
        // themselves are collective: every rank calls both).
        let a1 = pin1.a().gather_to_root(comm);
        let a2 = pin2.a().gather_to_root(comm);
        let distinct = comm.rank() != 0 || a1 != a2;

        // Freshness: the latest epoch equals a blocking rerun — a static
        // SUMMA recomputation of the updated operands.
        let (c_rerun, _) = dspgemm::core::summa::summa::<S>(&grid, &eng.a, &eng.b, 1, &mut timer);
        assert!(pin2.c().gather_to_root(comm) == c_rerun.gather_to_root(comm));

        // Live snapshot reads match the pinned latest epoch.
        assert!(
            pin2.c().get_collective(&grid, probe.0, probe.1)
                == c_rerun.get_collective(&grid, probe.0, probe.1)
        );
        distinct
    });
    assert!(
        out.results.iter().all(|&d| d),
        "p={p}: epochs 1 and 2 must be distinct states"
    );
}

#[test]
fn engine_pinned_epochs_bit_stable_u64plus() {
    for p in [1usize, 4, 9] {
        engine_isolation_case::<U64Plus>(p, |v| v);
    }
}

#[test]
fn engine_pinned_epochs_bit_stable_minplus() {
    for p in [1usize, 4, 9] {
        engine_isolation_case::<MinPlus>(p, |v| v as f64);
    }
}

/// A batch that touches only `B` must re-share every rank's `A` block into
/// the next epoch by refcount (`Arc::ptr_eq`), while `C` changes — the
/// block-granular copy-on-write property.
#[test]
fn publish_is_copy_on_write_per_block() {
    let n: Index = 16;
    for p in [1usize, 4] {
        let out = run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            // A = I so C = B: every B update changes C somewhere.
            let ident: Vec<Triple<u64>> = if comm.rank() == 0 {
                (0..n).map(|i| Triple::new(i, i, 1u64)).collect()
            } else {
                vec![]
            };
            let b_feed = if comm.rank() == 0 {
                random_triples::<U64Plus>(5, n, 60, |v| v)
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, ident, 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, b_feed, 1, &mut timer);
            let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
            let s0 = eng.snapshot();
            // Update only B.
            let b_upd = if comm.rank() == 0 {
                random_triples::<U64Plus>(6, n, 20, |v| v)
            } else {
                vec![]
            };
            eng.apply_algebraic(&grid, vec![], b_upd);
            let s1 = eng.snapshot();
            assert_eq!(s1.epoch(), s0.epoch() + 1);
            // A blocks re-shared on every rank; C changed globally.
            let a_shared = Arc::ptr_eq(&s0.a().block_shared(), &s1.a().block_shared());
            let c_changed = s0.c().gather_to_root(comm) != s1.c().gather_to_root(comm);
            (a_shared, c_changed)
        });
        assert!(
            out.results.iter().all(|&(shared, _)| shared),
            "p={p}: A blocks must be COW-shared across epochs"
        );
        assert!(
            out.results[0].1,
            "p={p}: C must actually change (the test is vacuous otherwise)"
        );
    }
}

/// Analytics sessions: queries pinned at epoch `e` stay bit-identical while
/// insert and delete batches commit; post-batch queries see `e + 1` exactly
/// and equal a from-scratch session over the same graph (blocking rerun).
#[test]
fn session_pinned_queries_bit_stable() {
    let n: Index = 20;
    for p in [1usize, 4, 9] {
        let out = run(p, move |comm| {
            let feed = if comm.rank() == 0 {
                let mut tri = Vec::new();
                for (u, v) in [(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
                    tri.push(Triple::new(u, v, 1u64));
                    tri.push(Triple::new(v, u, 1u64));
                }
                tri
            } else {
                vec![]
            };
            let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, 1, feed);
            let tri = session.register(Box::new(TriangleCountView::new()));
            let grid_q = |s: &AnalyticsSession<U64Plus>| {
                (
                    s.product_entry(0, 2),
                    s.product_row_topk(0, 4, |&v| v as f64),
                    s.global_nnz(),
                )
            };

            // Pin after registration.
            let pin = session.pin();
            let e = pin.epoch();
            assert_eq!(session.epoch(), e);
            let before = (
                pin.product_entry(session.grid(), 0, 2),
                pin.product_row_topk(session.grid(), 0, 4, |&v| v as f64),
                pin.global_nnz(session.grid()),
                pin.view_as::<TriangleReading>(tri).unwrap().count(),
            );
            let live_before = grid_q(&session);

            // Batch 1: inserts closing new triangles. Epoch advances by 1.
            let ins = if comm.rank() == 0 {
                vec![
                    Triple::new(4u32, 5u32, 1u64),
                    Triple::new(5, 4, 1),
                    Triple::new(3, 5, 1),
                    Triple::new(5, 3, 1),
                ]
            } else {
                vec![]
            };
            session.insert_edges(ins);
            assert_eq!(session.epoch(), e + 1);
            // Batch 2: delete an edge (general path). Epoch advances again.
            session.delete_edges(if comm.rank() == 0 {
                vec![(0, 1), (1, 0)]
            } else {
                vec![]
            });
            assert_eq!(session.epoch(), e + 2);

            // Isolation: the pinned epoch answers exactly as before.
            let after = (
                pin.product_entry(session.grid(), 0, 2),
                pin.product_row_topk(session.grid(), 0, 4, |&v| v as f64),
                pin.global_nnz(session.grid()),
                pin.view_as::<TriangleReading>(tri).unwrap().count(),
            );
            assert!(after == before, "pinned epoch moved under batches");
            // The live session moved on (the batches were not a no-op).
            let live_after = grid_q(&session);
            assert!(live_after != live_before);

            // Freshness: a from-scratch session over the updated graph (the
            // blocking rerun) agrees bit-identically with the latest epoch.
            let latest = session.pin();
            let a_now = latest.adjacency().gather_to_root(comm);
            let rerun =
                AnalyticsSession::<U64Plus>::from_triples(comm, n, 1, a_now.unwrap_or_default());
            let rerun_pin = rerun.pin();
            assert!(
                latest.product().gather_to_root(comm) == rerun_pin.product().gather_to_root(comm)
            );
            true
        });
        assert!(out.results.iter().all(|&x| x), "p={p}");
    }
}

/// Retention regression: with no outstanding pins exactly one epoch stays
/// alive however many batches commit, and the live footprint is the latest
/// epoch's alone; a held pin keeps exactly one extra epoch alive until
/// dropped.
#[test]
fn retention_bounded_by_pins() {
    let n: Index = 20;
    let out = run(4, move |comm| {
        let feed = if comm.rank() == 0 {
            random_triples::<U64Plus>(3, n, 120, |v| v)
        } else {
            vec![]
        };
        let mut session = AnalyticsSession::<U64Plus>::from_triples(comm, n, 1, feed);
        // Six unpinned batches: old epochs must die as they are superseded.
        for round in 0..6u64 {
            let ins = if comm.rank() == 0 {
                random_triples::<U64Plus>(40 + round, n, 8, |v| v)
            } else {
                vec![]
            };
            session.insert_edges(ins);
            assert_eq!(session.snapshots().retained(), 1, "round {round}");
        }
        let solo_bytes: usize = {
            let mut seen = Vec::new();
            session
                .snapshots()
                .live()
                .iter()
                .map(|s| s.heap_bytes_unshared(&mut seen))
                .sum()
        };
        let latest_bytes = session.pin().heap_bytes();
        assert_eq!(solo_bytes, latest_bytes, "no-pin footprint = latest epoch");

        // Hold a pin across three batches: exactly one extra epoch lives,
        // and the combined unshared footprint stays within 2x the latest
        // epoch (shared COW blocks are charged once).
        let pin = session.pin();
        for round in 0..3u64 {
            let ins = if comm.rank() == 0 {
                random_triples::<U64Plus>(60 + round, n, 8, |v| v)
            } else {
                vec![]
            };
            session.insert_edges(ins);
            assert_eq!(session.snapshots().retained(), 2);
        }
        let pinned_bytes: usize = {
            let mut seen = Vec::new();
            session
                .snapshots()
                .live()
                .iter()
                .map(|s| s.heap_bytes_unshared(&mut seen))
                .sum()
        };
        let latest_bytes = session.pin().heap_bytes();
        assert!(
            pinned_bytes <= 2 * latest_bytes,
            "retained footprint {pinned_bytes} exceeds 2x latest {latest_bytes}"
        );
        drop(pin);
        // The pinned epoch dies with its last handle — no publish needed.
        assert_eq!(session.snapshots().retained(), 1);
        assert_eq!(session.snapshots().published(), 1 + 6 + 3);
        true
    });
    assert!(out.results.iter().all(|&x| x));
}
