//! Cross-system equivalence: all four implementations (ours, CombBLAS-like,
//! CTF-like, PETSc-like) must produce identical results on identical
//! workloads — differences in the benchmarks are then attributable to
//! architecture, not to semantics.

use dspgemm::baselines::{
    combblas, combblas::CombBlasMatrix, ctf, ctf::CtfMatrix, petsc, petsc::PetscMatrix,
};
use dspgemm::core::summa::summa;
use dspgemm::core::{DistMat, Grid};
use dspgemm::sparse::semiring::U64Plus;
use dspgemm::sparse::{Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;

fn random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(n as u64) as Index,
                rng.gen_range(n as u64) as Index,
                rng.gen_range(5) + 1,
            )
        })
        .collect()
}

/// Coordinate-unique random triples: removes the only semantic divergence
/// between dynamic construction (insert = last write wins) and the static
/// baselines' assembly (add-combine).
fn unique_random_triples(seed: u64, n: Index, count: usize) -> Vec<Triple<u64>> {
    let mut seen = std::collections::BTreeMap::new();
    for t in random_triples(seed, n, count) {
        seen.entry((t.row, t.col)).or_insert(t.val);
    }
    seen.into_iter()
        .map(|((r, c), v)| Triple::new(r, c, v))
        .collect()
}

#[test]
fn all_systems_agree_on_construction() {
    let n: Index = 40;
    let out = dspgemm_mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        // Same per-rank input everywhere; add-combine semantics everywhere.
        let mine = random_triples(1 + comm.rank() as u64, n, 120);
        let ours = {
            let mut m = DistMat::empty(&grid, n, n);
            let upd = dspgemm::core::update::build_update_matrix::<U64Plus>(
                &grid,
                n,
                n,
                mine.clone(),
                dspgemm::core::update::Dedup::Add,
                &mut timer,
            );
            dspgemm::core::update::apply_add::<U64Plus>(&mut m, &upd, 2);
            m.gather_to_root(comm)
        };
        let cb = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, mine.clone(), &mut timer)
            .gather_to_root(&grid);
        let ct = CtfMatrix::construct::<U64Plus>(&grid, n, n, mine.clone(), &mut timer)
            .gather_to_root(&grid);
        let pe =
            PetscMatrix::construct::<U64Plus>(comm, n, n, mine, &mut timer).gather_to_root(comm);
        (ours, cb, ct, pe)
    });
    let (ours, cb, ct, pe) = &out.results[0];
    assert_eq!(ours, cb, "ours vs CombBLAS-like");
    assert_eq!(ours, ct, "ours vs CTF-like");
    assert_eq!(ours, pe, "ours vs PETSc-like");
}

#[test]
fn all_systems_agree_on_spgemm() {
    let n: Index = 32;
    let out = dspgemm_mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let feed_a = if comm.rank() == 0 {
            unique_random_triples(10, n, 100)
        } else {
            vec![]
        };
        let feed_b = if comm.rank() == 0 {
            unique_random_triples(11, n, 100)
        } else {
            vec![]
        };
        // Ours.
        let a = DistMat::from_global_triples(&grid, n, n, feed_a.clone(), 1, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, feed_b.clone(), 1, &mut timer);
        let (c_ours, _) = summa::<U64Plus>(&grid, &a, &b, 1, &mut timer);
        // CombBLAS.
        let a_cb = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, feed_a.clone(), &mut timer);
        let b_cb = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, feed_b.clone(), &mut timer);
        let (c_cb, _) = combblas::spgemm::<U64Plus>(&grid, &a_cb, &b_cb, 1, &mut timer);
        // CTF.
        let a_ct = CtfMatrix::construct::<U64Plus>(&grid, n, n, feed_a.clone(), &mut timer);
        let b_ct = CtfMatrix::construct::<U64Plus>(&grid, n, n, feed_b.clone(), &mut timer);
        let (c_ct, _) = ctf::spgemm::<U64Plus>(&grid, &a_ct, &b_ct, 1, &mut timer);
        // PETSc.
        let a_pe = PetscMatrix::construct::<U64Plus>(comm, n, n, feed_a, &mut timer);
        let b_pe = PetscMatrix::construct::<U64Plus>(comm, n, n, feed_b, &mut timer);
        let (c_pe, _) = petsc::spgemm::<U64Plus>(comm, &a_pe, &b_pe, 1, &mut timer);
        (
            c_ours.gather_to_root(comm),
            c_cb.gather_to_root(&grid),
            c_ct.gather_to_root(&grid),
            c_pe.gather_to_root(comm),
        )
    });
    let (ours, cb, ct, pe) = &out.results[0];
    assert_eq!(ours, cb, "ours vs CombBLAS-like product");
    assert_eq!(ours, ct, "ours vs CTF-like product");
    assert_eq!(ours, pe, "ours vs PETSc-like product");
}

#[test]
fn fig9_protocol_dynamic_equals_competitor_fold() {
    // The Fig. 9 protocol semantics: after k batches, our maintained C must
    // equal the competitors' C (sum of per-batch A*·B products).
    let n: Index = 28;
    let out = dspgemm_mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let b_feed = if comm.rank() == 0 {
            unique_random_triples(20, n, 120)
        } else {
            vec![]
        };
        let mut b_ours = DistMat::from_global_triples(&grid, n, n, b_feed.clone(), 1, &mut timer);
        let mut a_ours: DistMat<u64> = DistMat::empty(&grid, n, n);
        let mut c_ours: DistMat<u64> = DistMat::empty(&grid, n, n);
        let b_cb = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, b_feed, &mut timer);
        let mut c_cb = CombBlasMatrix::<u64>::empty(&grid, n, n);
        for round in 0..3u64 {
            let batch = random_triples(30 + round * 5 + comm.rank() as u64, n, 8);
            dspgemm::core::dyn_algebraic::apply_algebraic_updates::<U64Plus>(
                &grid,
                &mut a_ours,
                &mut b_ours,
                &mut c_ours,
                batch.clone(),
                vec![],
                1,
                &mut timer,
            );
            let a_star = CombBlasMatrix::construct::<U64Plus>(&grid, n, n, batch, &mut timer);
            let (delta, _) = combblas::spgemm::<U64Plus>(&grid, &a_star, &b_cb, 1, &mut timer);
            c_cb.merge_add_local::<U64Plus>(&delta);
        }
        (c_ours.gather_to_root(comm), c_cb.gather_to_root(&grid))
    });
    let (ours, cb) = &out.results[0];
    assert_eq!(ours, cb);
}
