//! Communication-volume assertions — the paper's headline claims, checked
//! as hard test invariants rather than just benchmarks.

use dspgemm::core::dyn_algebraic::apply_algebraic_updates;
use dspgemm::core::summa::summa;
use dspgemm::core::update::{apply_add, build_update_matrix, Dedup};
use dspgemm::core::{DistMat, Grid};
use dspgemm::graph::catalog::small_instances;
use dspgemm::sparse::semiring::F64Plus;
use dspgemm::sparse::{Csr, Dcsr, Triple};
use dspgemm::util::stats::PhaseTimer;
use dspgemm::util::WireSize;

fn instance_triples() -> (u32, Vec<Triple<f64>>) {
    let spec = &small_instances(1)[0];
    let edges = spec.undirected_edges();
    (
        spec.n,
        edges.iter().map(|&(u, v)| Triple::new(u, v, 1.0)).collect(),
    )
}

/// DCSR beats CSR on the wire for hypersparse blocks — the Section IV
/// justification for communicating update matrices in DCSR.
#[test]
fn dcsr_wire_size_beats_csr_when_hypersparse() {
    let n = 100_000u32;
    let triples: Vec<Triple<f64>> = (0..200).map(|i| Triple::new(i * 499, 3, 1.0)).collect();
    let csr = Csr::from_sorted_triples(n, n, &triples);
    let dcsr = Dcsr::from_sorted_triples(n, n, &triples);
    assert!(
        dcsr.wire_bytes() * 50 < csr.wire_bytes(),
        "dcsr {} vs csr {}",
        dcsr.wire_bytes(),
        csr.wire_bytes()
    );
}

/// Algorithm 1 on a hypersparse batch moves far fewer bytes than a static
/// recomputation on a real (proxy) workload.
#[test]
fn dynamic_update_volume_beats_static_recompute() {
    let (n, triples) = instance_triples();
    let batch: Vec<Triple<f64>> = triples.iter().copied().take(64).collect();
    let triples2 = triples.clone();
    let batch2 = batch.clone();
    // Dynamic: construction + initial product + one Algorithm-1 batch.
    let dynamic = dspgemm_mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let feed = if comm.rank() == 0 {
            triples.clone()
        } else {
            vec![]
        };
        let mut a = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
        let mut b = DistMat::from_global_triples(&grid, n, n, feed, 1, &mut timer);
        let (mut c, _) = summa::<F64Plus>(&grid, &a, &b, 1, &mut timer);
        let ups = if comm.rank() == 0 {
            batch.clone()
        } else {
            vec![]
        };
        apply_algebraic_updates::<F64Plus>(
            &grid,
            &mut a,
            &mut b,
            &mut c,
            ups,
            vec![],
            1,
            &mut timer,
        );
        c.local_nnz()
    });
    // Static: same prefix + update application + full SUMMA recomputation.
    let static_rerun = dspgemm_mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let feed = if comm.rank() == 0 {
            triples2.clone()
        } else {
            vec![]
        };
        let mut a = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, feed, 1, &mut timer);
        let (_, _) = summa::<F64Plus>(&grid, &a, &b, 1, &mut timer);
        let ups = if comm.rank() == 0 {
            batch2.clone()
        } else {
            vec![]
        };
        let upd = build_update_matrix::<F64Plus>(&grid, n, n, ups, Dedup::Add, &mut timer);
        apply_add::<F64Plus>(&mut a, &upd, 1);
        let (c2, _) = summa::<F64Plus>(&grid, &a, &b, 1, &mut timer);
        c2.local_nnz()
    });
    let dyn_bytes = dynamic.stats.total_bytes();
    let stat_bytes = static_rerun.stats.total_bytes();
    assert!(
        dyn_bytes < stat_bytes,
        "dynamic volume {dyn_bytes} must be below static {stat_bytes}"
    );
}

/// The paper's bandwidth claim: Algorithm 1's broadcast volume scales with
/// the update size, not with the operand size.
#[test]
fn bcast_volume_scales_with_batch_not_operands() {
    let (n, triples) = instance_triples();
    let volume_for_batch = |batch_len: usize| {
        let triples = triples.clone();
        let base = dspgemm_mpi::run(4, {
            let triples = triples.clone();
            move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let feed = if comm.rank() == 0 {
                    triples.clone()
                } else {
                    vec![]
                };
                let a = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
                let b = DistMat::from_global_triples(&grid, n, n, feed, 1, &mut timer);
                let (c, _) = summa::<F64Plus>(&grid, &a, &b, 1, &mut timer);
                c.local_nnz()
            }
        });
        let full = dspgemm_mpi::run(4, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = if comm.rank() == 0 {
                triples.clone()
            } else {
                vec![]
            };
            let mut a = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
            let mut b = DistMat::from_global_triples(&grid, n, n, feed.clone(), 1, &mut timer);
            let (mut c, _) = summa::<F64Plus>(&grid, &a, &b, 1, &mut timer);
            let ups: Vec<Triple<f64>> = if comm.rank() == 0 {
                triples.iter().copied().take(batch_len).collect()
            } else {
                vec![]
            };
            apply_algebraic_updates::<F64Plus>(
                &grid,
                &mut a,
                &mut b,
                &mut c,
                ups,
                vec![],
                1,
                &mut timer,
            );
            c.local_nnz()
        });
        full.stats
            .bytes_in(dspgemm_mpi::CommCategory::Bcast)
            .saturating_sub(base.stats.bytes_in(dspgemm_mpi::CommCategory::Bcast))
    };
    let small = volume_for_batch(8);
    let big = volume_for_batch(512);
    // Bcast delta grows with the batch (update-driven), but both stay tiny
    // relative to broadcasting the operands like SUMMA would.
    assert!(
        big > small,
        "bcast volume must grow with batch: {small} vs {big}"
    );
}
