//! Schedule-equivalence and workspace-reuse properties of the skew-aware
//! local kernels.
//!
//! The [`RowSchedule`]s (contiguous / flop-balanced / work-stealing) move
//! *work* between intra-rank worker threads, never values between entries:
//! every kernel flavor (plain, bloom, pattern, masked) must produce
//! bit-identical output and identical total flops under every schedule at
//! every thread count, for both evaluated semirings — on skewed R-MAT
//! inputs, where the schedules actually split differently. The pooled
//! workspaces must be *reused* across calls (pool heap stops growing after
//! the first call) rather than silently reallocated.

use dspgemm::core::summa::{summa, summa_exec};
use dspgemm::core::{DistMat, Exec, Grid};
use dspgemm::graph::rmat::{generate, RmatParams};
use dspgemm::sparse::local_mm::{
    spgemm_bloom_with, spgemm_pattern_with, spgemm_with, KernelPlan, MmOutput,
};
use dspgemm::sparse::masked_mm::{masked_spgemm_bloom_with, MaskSet};
use dspgemm::sparse::semiring::{MinPlus, Semiring, U64Plus};
use dspgemm::sparse::workspace::WorkspacePool;
use dspgemm::sparse::{Csr, Index, Triple};
use dspgemm::util::par::RowSchedule;
use dspgemm::util::stats::PhaseTimer;

const SCHEDULES: [RowSchedule; 3] = [
    RowSchedule::Contiguous,
    RowSchedule::FlopBalanced,
    RowSchedule::WorkStealing,
];

const THREAD_COUNTS: [usize; 3] = [1, 4, 9];

/// A skewed (Graph500 R-MAT) square matrix: hub rows carry orders of
/// magnitude more work than tail rows, so the three schedules produce
/// genuinely different splits.
fn skewed_csr<S: Semiring>(
    seed: u64,
    scale: u32,
    m: usize,
    val: impl Fn(u64) -> S::Elem,
) -> Csr<S::Elem> {
    let n: Index = 1 << scale;
    let triples: Vec<Triple<S::Elem>> = generate(&RmatParams::GRAPH500, scale, m, seed)
        .into_iter()
        .enumerate()
        .map(|(i, (u, v))| Triple::new(u, v, val(i as u64 % 9 + 1)))
        .collect();
    Csr::from_triples::<S>(n, n, triples)
}

fn assert_same<A: PartialEq + std::fmt::Debug + Copy>(
    base: &MmOutput<A>,
    got: &MmOutput<A>,
    what: &str,
) {
    assert_eq!(base.result, got.result, "{what}: result differs");
    assert_eq!(base.flops, got.flops, "{what}: flops differ");
    assert_eq!(
        base.flops,
        got.thread_flops.iter().sum::<u64>(),
        "{what}: thread flops must sum to the total"
    );
}

fn check_all_kernels<S: Semiring>(seed: u64, val: impl Fn(u64) -> S::Elem + Copy) {
    let a = skewed_csr::<S>(seed, 7, 1500, val);
    let b = skewed_csr::<S>(seed ^ 0xABCD, 7, 1500, val);
    // Baselines: contiguous, single thread.
    let plain0 = spgemm_with::<S, _, _>(
        &a,
        &b,
        KernelPlan::with_schedule(1, RowSchedule::Contiguous),
    );
    let bloom0 = spgemm_bloom_with::<S, _, _>(
        &a,
        &b,
        5,
        KernelPlan::with_schedule(1, RowSchedule::Contiguous),
    );
    let pattern0 = spgemm_pattern_with(
        &a,
        &b,
        5,
        KernelPlan::with_schedule(1, RowSchedule::Contiguous),
    );
    // Mask = half of the full product's pattern (a genuinely partial mask).
    let all = plain0.result.to_triples();
    let half: Vec<_> = all[..all.len() / 2].to_vec();
    let mask = MaskSet::from_pairs(half.iter().map(|t| (t.row, t.col)));
    let masked0 = masked_spgemm_bloom_with::<S, _, _>(
        &a,
        &b,
        &mask,
        5,
        KernelPlan::with_schedule(1, RowSchedule::Contiguous),
    );
    for &threads in &THREAD_COUNTS {
        for &schedule in &SCHEDULES {
            let tag = format!("{} t={threads} {schedule:?}", S::name());
            // Pooled and unpooled plans must agree too; exercise pooling.
            let pool_plain = WorkspacePool::new();
            let plan = KernelPlan::with_schedule(threads, schedule).pooled(&pool_plain);
            assert_same(
                &plain0,
                &spgemm_with::<S, _, _>(&a, &b, plan),
                &format!("plain {tag}"),
            );
            let pool_fused = WorkspacePool::new();
            let plan = KernelPlan::with_schedule(threads, schedule).pooled(&pool_fused);
            assert_same(
                &bloom0,
                &spgemm_bloom_with::<S, _, _>(&a, &b, 5, plan),
                &format!("bloom {tag}"),
            );
            let pool_pat = WorkspacePool::new();
            let plan = KernelPlan::with_schedule(threads, schedule).pooled(&pool_pat);
            assert_same(
                &pattern0,
                &spgemm_pattern_with(&a, &b, 5, plan),
                &format!("pattern {tag}"),
            );
            let plan = KernelPlan::with_schedule(threads, schedule).pooled(&pool_fused);
            assert_same(
                &masked0,
                &masked_spgemm_bloom_with::<S, _, _>(&a, &b, &mask, 5, plan),
                &format!("masked {tag}"),
            );
        }
    }
}

#[test]
fn schedules_bit_identical_u64_plus() {
    check_all_kernels::<U64Plus>(41, |v| v);
}

#[test]
fn schedules_bit_identical_min_plus() {
    check_all_kernels::<MinPlus>(43, |v| v as f64);
}

/// Distributed equivalence: SUMMA under every schedule-carrying [`Exec`]
/// matches the default path on every grid size.
#[test]
fn summa_exec_schedules_match_across_grids() {
    let scale = 6u32;
    let n: Index = 1 << scale;
    for p in [1usize, 4, 9] {
        let mut gathered: Vec<Vec<Triple<u64>>> = Vec::new();
        for schedule in SCHEDULES {
            let out = dspgemm::mpi::run(p, move |comm| {
                let grid = Grid::new(comm);
                let mut timer = PhaseTimer::new();
                let t: Vec<Triple<u64>> = if comm.rank() == 0 {
                    generate(&RmatParams::GRAPH500, scale, 900, 17)
                        .into_iter()
                        .map(|(u, v)| Triple::new(u, v, u64::from(u % 5 + 1)))
                        .collect()
                } else {
                    vec![]
                };
                let a = DistMat::from_global_triples(&grid, n, n, t, 2, &mut timer);
                let exec = Exec::<U64Plus>::with_schedule(4, schedule);
                let (c, flops) = summa_exec::<U64Plus>(&grid, &a, &a, &exec, &mut timer);
                // Per-thread counters cover the whole local flop count.
                assert_eq!(timer.thread_flops().iter().sum::<u64>(), flops);
                c.gather_to_root(comm)
            });
            gathered.push(out.results[0].clone().unwrap_or_default());
        }
        assert_eq!(
            gathered[0], gathered[1],
            "p={p}: flop-balanced != contiguous"
        );
        assert_eq!(
            gathered[0], gathered[2],
            "p={p}: work-stealing != contiguous"
        );
        // And against the plain threads-based entry point.
        let out = dspgemm::mpi::run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let t: Vec<Triple<u64>> = if comm.rank() == 0 {
                generate(&RmatParams::GRAPH500, scale, 900, 17)
                    .into_iter()
                    .map(|(u, v)| Triple::new(u, v, u64::from(u % 5 + 1)))
                    .collect()
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, n, n, t, 2, &mut timer);
            let (c, _) = summa::<U64Plus>(&grid, &a, &a, 4, &mut timer);
            c.gather_to_root(comm)
        });
        assert_eq!(
            gathered[0],
            out.results[0].clone().unwrap_or_default(),
            "p={p}: exec path != default path"
        );
    }
}

/// Workspace-reuse regression: repeated identical kernel calls against one
/// pool must stop growing its heap after the first call (pooled buffers are
/// actually reused, not silently reallocated), and the pool must converge
/// to one workspace per worker thread.
#[test]
fn workspace_pool_reused_across_rounds() {
    let a = skewed_csr::<U64Plus>(59, 7, 2000, |v| v);
    let b = skewed_csr::<U64Plus>(61, 7, 2000, |v| v);
    for schedule in SCHEDULES {
        let threads = 4;
        let pool: WorkspacePool<u64> = WorkspacePool::new();
        let mut heaps = Vec::new();
        for round in 0..5 {
            let plan = KernelPlan::with_schedule(threads, schedule).pooled(&pool);
            let out = spgemm_with::<U64Plus, _, _>(&a, &b, plan);
            assert!(out.flops > 0);
            assert!(
                pool.stashed() <= threads,
                "{schedule:?}: pool grew past one workspace per worker"
            );
            heaps.push(pool.heap_bytes());
            let _ = round;
        }
        assert!(heaps[0] > 0, "{schedule:?}: pooled buffers retain capacity");
        // Which stashed workspace a worker leases is nondeterministic
        // (concurrent pops), so a workspace can still grow when it first
        // serves a heavier range than before; the regression property is
        // boundedness, not exact flatness — the pre-fix stealing leak grew
        // linearly (~5x over these rounds), far past this cap.
        let last = *heaps.last().unwrap();
        assert!(
            last <= heaps[1].saturating_mul(2),
            "{schedule:?}: pool heap kept growing: {heaps:?}"
        );
    }
}

/// The engine's session [`Exec`] accumulates leased workspaces across update
/// batches instead of reallocating per batch: after the first batch the
/// session pools hold capacity, and it stays flat across further batches.
#[test]
fn engine_exec_pools_persist_across_batches() {
    let scale = 6u32;
    let n: Index = 1 << scale;
    let out = dspgemm::mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let t: Vec<Triple<u64>> = if comm.rank() == 0 {
            generate(&RmatParams::GRAPH500, scale, 1200, 23)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, u64::from(v % 7 + 1)))
                .collect()
        } else {
            vec![]
        };
        let a = DistMat::from_global_triples(&grid, n, n, t.clone(), 2, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, t, 2, &mut timer);
        let mut eng =
            dspgemm::core::DynSpGemm::<U64Plus>::new_with_exec(&grid, a, b, Exec::new(2), false);
        let after_init = eng.exec.heap_bytes();
        let mut heaps = Vec::new();
        for round in 0..4u64 {
            let ups: Vec<Triple<u64>> = generate(&RmatParams::GRAPH500, scale, 64, 100 + round)
                .into_iter()
                .map(|(u, v)| Triple::new(u, v, 1))
                .collect();
            eng.apply_algebraic(&grid, ups, vec![]);
            heaps.push(eng.exec.heap_bytes());
        }
        (after_init, heaps)
    });
    for (after_init, heaps) in &out.results {
        assert!(
            *after_init > 0,
            "initial SUMMA must leave pooled capacity behind"
        );
        // Capacities may still grow while batches discover their high-water
        // marks, but must never exceed a small multiple of the first batch
        // (no per-round fresh allocation: 4 rounds of fresh O(ncols) SPA
        // scratch would quadruple this).
        let last = *heaps.last().unwrap();
        assert!(
            last <= heaps[0].max(*after_init) * 2,
            "session pools regrew per batch: init={after_init} heaps={heaps:?}"
        );
    }
}
