//! End-to-end integration tests: the dynamic engine must agree with a
//! static recomputation after arbitrary update sequences, on every semiring
//! and grid size.

use dspgemm::core::dyn_general::GeneralUpdates;
use dspgemm::core::engine::DynSpGemm;
use dspgemm::core::summa::summa;
use dspgemm::core::{DistMat, Grid};
use dspgemm::sparse::dense::Dense;
use dspgemm::sparse::semiring::{BoolOrAnd, F64Plus, MinPlus, Semiring, U64Plus};
use dspgemm::sparse::{Index, Triple};
use dspgemm::util::rng::{Rng, SplitMix64};
use dspgemm::util::stats::PhaseTimer;

fn random_triples<S, F>(seed: u64, n: Index, count: usize, mut value: F) -> Vec<Triple<S::Elem>>
where
    S: Semiring,
    F: FnMut(&mut SplitMix64) -> S::Elem,
{
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let r = rng.gen_range(n as u64) as Index;
            let c = rng.gen_range(n as u64) as Index;
            let v = value(&mut rng);
            Triple::new(r, c, v)
        })
        .collect()
}

/// Generic scenario: initial A, B; three algebraic batches; verify
/// C == static(A'·B') via gather + dense compare.
fn algebraic_scenario<S, F>(p: usize, n: Index, seed: u64, value: F)
where
    S: Semiring,
    F: FnMut(&mut SplitMix64) -> S::Elem + Clone + Send + Sync,
{
    let out = dspgemm_mpi::run(p, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let mut value = value.clone();
        let feed = |s: u64, value: &mut F| {
            if comm.rank() == 0 {
                random_triples::<S, _>(s, n, 4 * n as usize, |rng| value(rng))
            } else {
                vec![]
            }
        };
        let a_t = feed(seed, &mut value);
        let b_t = feed(seed + 1, &mut value);
        let a = DistMat::from_global_triples(&grid, n, n, a_t, 2, &mut timer);
        let b = DistMat::from_global_triples(&grid, n, n, b_t, 2, &mut timer);
        let mut eng = DynSpGemm::<S>::new(&grid, a, b, 2, false);
        for round in 0..3u64 {
            let a_ups =
                random_triples::<S, _>(seed + 10 + round * 3 + comm.rank() as u64, n, 10, |rng| {
                    value(rng)
                });
            let b_ups =
                random_triples::<S, _>(seed + 50 + round * 3 + comm.rank() as u64, n, 10, |rng| {
                    value(rng)
                });
            eng.apply_algebraic(&grid, a_ups, b_ups);
        }
        let (c_static, _) = summa::<S>(&grid, &eng.a, &eng.b, 2, &mut timer);
        (eng.c.gather_to_root(comm), c_static.gather_to_root(comm))
    });
    let (c_dyn, c_static) = &out.results[0];
    let dd = Dense::from_triples::<S>(n, n, c_dyn.as_ref().unwrap());
    let ds = Dense::from_triples::<S>(n, n, c_static.as_ref().unwrap());
    assert_eq!(
        dd.diff(&ds),
        vec![],
        "semiring {} p={p}: dynamic != static",
        S::name()
    );
}

#[test]
fn algebraic_u64_plus_all_grids() {
    for p in [1, 4, 9] {
        algebraic_scenario::<U64Plus, _>(p, 24, 100, |rng| rng.gen_range(5) + 1);
    }
}

#[test]
fn algebraic_f64_plus_integer_values() {
    // Integer-valued floats keep the comparison exact across orderings.
    for p in [1, 4] {
        algebraic_scenario::<F64Plus, _>(p, 24, 200, |rng| (rng.gen_range(5) + 1) as f64);
    }
}

#[test]
fn algebraic_min_plus_insert_only() {
    // Insertions of fresh entries and re-inserts of lower values are
    // algebraic under (min,+).
    for p in [1, 4] {
        algebraic_scenario::<MinPlus, _>(p, 24, 300, |rng| (rng.gen_range(50) + 1) as f64);
    }
}

#[test]
fn algebraic_bool_or_and() {
    for p in [1, 4] {
        algebraic_scenario::<BoolOrAnd, _>(p, 24, 400, |_| true);
    }
}

/// General scenario under (min,+): sets that increase values + deletions,
/// interleaved with algebraic batches, on a filter-tracking session.
#[test]
fn mixed_algebraic_and_general_min_plus() {
    let n: Index = 20;
    for p in [1usize, 4, 9] {
        let out = dspgemm_mpi::run(p, move |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = |s: u64| {
                if comm.rank() == 0 {
                    random_triples::<MinPlus, _>(s, n, 60, |rng| (rng.gen_range(9) + 1) as f64)
                } else {
                    vec![]
                }
            };
            let a = DistMat::from_global_triples(&grid, n, n, feed(1), 1, &mut timer);
            let b = DistMat::from_global_triples(&grid, n, n, feed(2), 1, &mut timer);
            let mut eng = DynSpGemm::<MinPlus>::new(&grid, a, b, 1, true);
            for round in 0..2u64 {
                // Algebraic batch (inserts).
                eng.apply_algebraic(
                    &grid,
                    random_triples::<MinPlus, _>(10 + round + comm.rank() as u64, n, 6, |rng| {
                        (rng.gen_range(9) + 1) as f64
                    }),
                    vec![],
                );
                // General batch: increase some existing values + delete some.
                let cur = eng.a.gather_to_root(comm);
                let upd = if comm.rank() == 0 {
                    let cur = cur.unwrap();
                    let mut rng = SplitMix64::new(77 + round);
                    let mut upd = GeneralUpdates::new();
                    for _ in 0..4 {
                        if !cur.is_empty() {
                            let t = cur[rng.gen_index(cur.len())];
                            upd.sets.push(Triple::new(t.row, t.col, t.val + 10.0));
                            let d = cur[rng.gen_index(cur.len())];
                            upd.deletes.push((d.row, d.col));
                        }
                    }
                    upd
                } else {
                    GeneralUpdates::new()
                };
                eng.apply_general(&grid, upd, GeneralUpdates::new());
            }
            let (c_static, _) = summa::<MinPlus>(&grid, &eng.a, &eng.b, 1, &mut timer);
            (eng.c.gather_to_root(comm), c_static.gather_to_root(comm))
        });
        let (c_dyn, c_static) = &out.results[0];
        let dd = Dense::from_triples::<MinPlus>(n, n, c_dyn.as_ref().unwrap());
        let ds = Dense::from_triples::<MinPlus>(n, n, c_static.as_ref().unwrap());
        assert_eq!(dd.diff(&ds), vec![], "p={p}");
    }
}

#[test]
fn determinism_across_runs() {
    let run_once = || {
        let out = dspgemm_mpi::run(4, |comm| {
            let grid = Grid::new(comm);
            let mut timer = PhaseTimer::new();
            let feed = if comm.rank() == 0 {
                random_triples::<U64Plus, _>(9, 30, 100, |rng| rng.gen_range(9) + 1)
            } else {
                vec![]
            };
            let a = DistMat::from_global_triples(&grid, 30, 30, feed.clone(), 2, &mut timer);
            let b = DistMat::from_global_triples(&grid, 30, 30, feed, 2, &mut timer);
            let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 2, false);
            eng.apply_algebraic(
                &grid,
                random_triples::<U64Plus, _>(11 + comm.rank() as u64, 30, 20, |rng| {
                    rng.gen_range(9) + 1
                }),
                vec![],
            );
            eng.c.gather_to_root(comm)
        });
        out.results[0].clone()
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn rectangular_matrices() {
    // Non-square shapes and grid-unaligned dimensions.
    let (n, k, m): (Index, Index, Index) = (17, 23, 11);
    let out = dspgemm_mpi::run(4, move |comm| {
        let grid = Grid::new(comm);
        let mut timer = PhaseTimer::new();
        let a_t = if comm.rank() == 0 {
            let mut rng = SplitMix64::new(5);
            (0..80)
                .map(|_| {
                    Triple::new(
                        rng.gen_range(n as u64) as Index,
                        rng.gen_range(k as u64) as Index,
                        rng.gen_range(4) + 1,
                    )
                })
                .collect::<Vec<Triple<u64>>>()
        } else {
            vec![]
        };
        let b_t = if comm.rank() == 0 {
            let mut rng = SplitMix64::new(6);
            (0..80)
                .map(|_| {
                    Triple::new(
                        rng.gen_range(k as u64) as Index,
                        rng.gen_range(m as u64) as Index,
                        rng.gen_range(4) + 1,
                    )
                })
                .collect::<Vec<Triple<u64>>>()
        } else {
            vec![]
        };
        let a = DistMat::from_global_triples(&grid, n, k, a_t, 1, &mut timer);
        let b = DistMat::from_global_triples(&grid, k, m, b_t, 1, &mut timer);
        let mut eng = DynSpGemm::<U64Plus>::new(&grid, a, b, 1, false);
        let ups = if comm.rank() == 1 {
            vec![Triple::new(0, 0, 3u64), Triple::new(16, 22, 4)]
        } else {
            vec![]
        };
        eng.apply_algebraic(&grid, ups, vec![]);
        let (c_static, _) = summa::<U64Plus>(&grid, &eng.a, &eng.b, 1, &mut timer);
        (eng.c.gather_to_root(comm), c_static.gather_to_root(comm))
    });
    let (c_dyn, c_static) = &out.results[0];
    assert_eq!(c_dyn, c_static);
}
