#!/usr/bin/env python3
"""Collate the per-PR benchmark records (BENCH_pr*.json) into one
performance trajectory.

Each PR that changes performance lands a BENCH_pr<N>.json at the repo root
with a shared envelope (pr, title, date, host, benchmark_command, note)
plus free-form result sections. This script walks them in PR order and
prints a readable trajectory — one block per PR with its headline summary
lines — or, with --json, emits the collated records as a single document
(e.g. for plotting).

The PR sequence is allowed to have holes (a docs-only PR ships no bench
file — PR 6, for example): gaps are reported, never fatal. An empty
trajectory still emits the stable JSON schema
(``{"trajectory": [], "gaps": []}``) and exits 0, so downstream tooling
can rely on the shape unconditionally. Unreadable or malformed records
are skipped with a warning rather than aborting the collation.

Usage:
    python3 scripts/bench_trajectory.py [--json] [repo_root]
"""

import argparse
import glob
import json
import os
import re
import sys


def load_records(root):
    """All readable BENCH_pr*.json records under `root`, sorted by PR number.

    A record that fails to parse is skipped with a warning — one corrupt
    file must not take down the whole trajectory.
    """
    records = []
    for path in glob.glob(os.path.join(root, "BENCH_pr*.json")):
        m = re.search(r"BENCH_pr(\d+)\.json$", os.path.basename(path))
        if not m:
            continue
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {os.path.basename(path)}: {e}", file=sys.stderr)
            continue
        if not isinstance(doc, dict):
            print(
                f"warning: skipping {os.path.basename(path)}: not a JSON object",
                file=sys.stderr,
            )
            continue
        doc.setdefault("pr", int(m.group(1)))
        doc["_path"] = os.path.basename(path)
        records.append(doc)
    records.sort(key=lambda d: d["pr"])
    return records


def find_gaps(records):
    """PR numbers missing from the (possibly non-contiguous) sequence.

    Only interior holes count: the series legitimately starts wherever the
    first benchmarked PR landed, and PRs that change no performance ship no
    record (PR 6, the observability layer, is such a hole).
    """
    present = sorted({d["pr"] for d in records})
    if len(present) < 2:
        return []
    return [n for n in range(present[0], present[-1]) if n not in present]


ENVELOPE = {"pr", "title", "date", "host", "benchmark_command", "note", "_path"}


def summaries(doc):
    """Yield (section, summary) for every result section that carries one."""
    for key, val in doc.items():
        if key in ENVELOPE or not isinstance(val, dict):
            continue
        s = val.get("summary")
        if isinstance(s, str):
            yield key, s


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--json", action="store_true", help="emit one collated JSON document")
    ap.add_argument("root", nargs="?", default=os.path.join(os.path.dirname(__file__), ".."))
    args = ap.parse_args()

    records = load_records(args.root)
    gaps = find_gaps(records)
    if not records:
        # An empty trajectory is a valid (if young) repo state: keep the
        # output schema stable and the exit code green.
        print("no BENCH_pr*.json records found under", args.root, file=sys.stderr)

    if args.json:
        out = [{k: v for k, v in doc.items() if k != "_path"} for doc in records]
        json.dump({"trajectory": out, "gaps": gaps}, sys.stdout, indent=2)
        print()
        return 0

    for doc in records:
        print(f"PR {doc['pr']} ({doc.get('date', '?')}) — {doc.get('title', doc['_path'])}")
        cmd = doc.get("benchmark_command")
        if cmd:
            print(f"  cmd: {cmd}")
        found = False
        for section, summary in summaries(doc):
            found = True
            print(f"  [{section}] {summary}")
        if not found:
            note = doc.get("note", "")
            if note:
                print(f"  {note[:300]}")
        print()
    if gaps:
        print(f"(no bench record for PR {', '.join(map(str, gaps))} — gap tolerated)")
    print(f"{len(records)} benchmark records collated.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
